package irs

import (
	"math"
	"sync"
)

// VectorSpace is a SMART-style tf.idf cosine model. The query tree
// is flattened to a weighted bag of leaves (#wsum weights carry
// through, other operators contribute weight 1); document and query
// vectors use ltc-style weighting:
//
//	w(t,d) = (1 + ln tf) · ln(1 + N/df)
//
// and scores are cosine-normalized by the true document norm, which
// is cached and invalidated via the index version counter.
//
// Boolean structure (#and/#or/#not) is ignored beyond leaf
// collection — the classic behaviour of vector engines, and exactly
// the kind of paradigm difference EXP-T7 surfaces.
type VectorSpace struct {
	mu       sync.Mutex
	normsVer uint64
	norms    map[DocID]float64
}

// NewVectorSpace returns a vector-space model instance. Instances
// cache per-index document norms; use one instance per collection.
func NewVectorSpace() *VectorSpace { return &VectorSpace{} }

// Name implements Model.
func (m *VectorSpace) Name() string { return "vector" }

// Eval implements Model.
func (m *VectorSpace) Eval(ix *Index, root *Node) map[DocID]float64 {
	if root == nil {
		return nil
	}
	leaves := flattenLeaves(root, 1.0)
	if len(leaves) == 0 {
		return nil
	}
	n := float64(ix.DocCount())
	scores := make(map[DocID]float64)
	var qnorm float64
	for _, lf := range leaves {
		var st *termStat
		switch lf.node.Kind {
		case NodeTerm:
			st = &termStat{tf: make(map[DocID]int)}
			for _, p := range ix.Postings(lf.node.Term) {
				st.tf[p.Doc] = p.TF()
			}
			st.df = len(st.tf)
		case NodePhrase:
			st = phraseStat(ix, lf.node)
		default:
			continue
		}
		if st.df == 0 {
			continue
		}
		idf := math.Log(1 + n/float64(st.df))
		qw := lf.weight * idf
		qnorm += qw * qw
		for d, tf := range st.tf {
			dw := (1 + math.Log(float64(tf))) * idf
			scores[d] += qw * dw
		}
	}
	if len(scores) == 0 {
		return scores
	}
	qn := math.Sqrt(qnorm)
	if qn == 0 {
		qn = 1
	}
	norms := m.docNorms(ix)
	for d := range scores {
		dn := norms[d]
		if dn == 0 {
			dn = 1
		}
		scores[d] /= qn * dn
	}
	return scores
}

type weightedLeaf struct {
	node   *Node
	weight float64
}

// flattenLeaves collects term/phrase leaves with multiplied #wsum
// weights. #not subtrees are skipped: negative evidence has no
// natural place in a pure vector model.
func flattenLeaves(n *Node, w float64) []weightedLeaf {
	switch n.Kind {
	case NodeTerm, NodePhrase:
		return []weightedLeaf{{node: n, weight: w}}
	case NodeNot:
		return nil
	case NodeSyn:
		var out []weightedLeaf
		for _, c := range n.Children {
			out = append(out, flattenLeaves(c, w)...)
		}
		return out
	case NodeWSum:
		var out []weightedLeaf
		for i, c := range n.Children {
			out = append(out, flattenLeaves(c, w*n.Weights[i])...)
		}
		return out
	default:
		var out []weightedLeaf
		for _, c := range n.Children {
			out = append(out, flattenLeaves(c, w)...)
		}
		return out
	}
}

// docNorms returns the cached full document norms, rebuilding them
// when the index has changed since the last computation.
func (m *VectorSpace) docNorms(ix *Index) map[DocID]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := ix.Version()
	if m.norms != nil && m.normsVer == v {
		return m.norms
	}
	n := float64(ix.DocCount())
	norms := make(map[DocID]float64)
	for _, term := range ix.terms() {
		ps := ix.postingsRaw(term)
		if len(ps) == 0 {
			continue
		}
		idf := math.Log(1 + n/float64(len(ps)))
		for _, p := range ps {
			dw := (1 + math.Log(float64(p.TF()))) * idf
			norms[p.Doc] += dw * dw
		}
	}
	for d, s := range norms {
		norms[d] = math.Sqrt(s)
	}
	m.norms = norms
	m.normsVer = v
	return norms
}

// terms returns all dictionary terms with live postings.
func (ix *Index) terms() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, 0, len(ix.dict))
	for t, pl := range ix.dict {
		if pl.df > 0 {
			out = append(out, t)
		}
	}
	return out
}
