package irs

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/irs/analysis"
)

// fixture builds a small index with controlled term distribution.
func fixture(t *testing.T) *Index {
	t.Helper()
	ix := NewIndex(analysis.NewAnalyzer(analysis.WithoutStemming(), analysis.WithStopwords(nil)))
	docs := map[string]string{
		"p1": "www www servers and the web filler filler filler",
		"p2": "nii information infrastructure filler filler filler",
		"p3": "www and nii together in one paragraph filler",
		"p4": "entirely unrelated content about telnet protocol",
	}
	for id, text := range docs {
		if _, err := ix.Add(id, text, nil); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

func scoresByExt(ix *Index, m Model, q string, t *testing.T) map[string]float64 {
	t.Helper()
	n, err := ParseQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for d, s := range m.Eval(ix.Snapshot(), n) {
		ext, _ := ix.ExtID(d)
		out[ext] = s
	}
	return out
}

func TestInferenceNetTermRanking(t *testing.T) {
	ix := fixture(t)
	s := scoresByExt(ix, InferenceNet{}, "www", t)
	if len(s) != 2 {
		t.Fatalf("www matched %d docs, want 2 (p1, p3)", len(s))
	}
	if s["p1"] <= s["p3"] {
		t.Errorf("tf ranking broken: p1 (tf=2) %v <= p3 (tf=1) %v", s["p1"], s["p3"])
	}
	for d, v := range s {
		if v <= 0.4 || v >= 1 {
			t.Errorf("belief(%s) = %v out of (0.4, 1)", d, v)
		}
	}
}

func TestInferenceNetAndPrefersBothTerms(t *testing.T) {
	ix := fixture(t)
	s := scoresByExt(ix, InferenceNet{}, "#and(www nii)", t)
	// p3 contains both terms; p1 only www, p2 only nii.
	if s["p3"] <= s["p1"] || s["p3"] <= s["p2"] {
		t.Errorf("#and should rank p3 highest: %v", s)
	}
	// Candidates include single-term docs (they get default belief
	// for the missing operand).
	if _, ok := s["p1"]; !ok {
		t.Error("#and dropped single-term candidate p1")
	}
}

func TestInferenceNetOrVsAnd(t *testing.T) {
	ix := fixture(t)
	and := scoresByExt(ix, InferenceNet{}, "#and(www nii)", t)
	or := scoresByExt(ix, InferenceNet{}, "#or(www nii)", t)
	for d := range and {
		if or[d] < and[d] {
			t.Errorf("#or(%s) = %v < #and(%s) = %v", d, or[d], d, and[d])
		}
	}
}

func TestInferenceNetNot(t *testing.T) {
	ix := fixture(t)
	s := scoresByExt(ix, InferenceNet{}, "#and(www #not(nii))", t)
	if s["p1"] <= s["p3"] {
		t.Errorf("#not should penalize p3 (contains nii): p1=%v p3=%v", s["p1"], s["p3"])
	}
}

func TestInferenceNetMaxAndSum(t *testing.T) {
	ix := fixture(t)
	mx := scoresByExt(ix, InferenceNet{}, "#max(www nii)", t)
	sm := scoresByExt(ix, InferenceNet{}, "#sum(www nii)", t)
	for _, d := range []string{"p1", "p2", "p3"} {
		if mx[d] < sm[d]-1e-12 {
			t.Errorf("#max(%s)=%v < #sum(%s)=%v", d, mx[d], d, sm[d])
		}
	}
}

func TestInferenceNetWSum(t *testing.T) {
	ix := fixture(t)
	heavyWWW := scoresByExt(ix, InferenceNet{}, "#wsum(10 www 1 nii)", t)
	heavyNII := scoresByExt(ix, InferenceNet{}, "#wsum(1 www 10 nii)", t)
	if heavyWWW["p1"] <= heavyWWW["p2"] {
		t.Errorf("weighting toward www should favor p1: %v", heavyWWW)
	}
	if heavyNII["p2"] <= heavyNII["p1"] {
		t.Errorf("weighting toward nii should favor p2: %v", heavyNII)
	}
}

func TestInferenceNetPhrase(t *testing.T) {
	ix := NewIndex(analysis.NewAnalyzer(analysis.WithoutStemming(), analysis.WithStopwords(nil)))
	ix.Add("d1", "the digital library opened", nil)
	ix.Add("d2", "library digital the opened", nil)
	s := make(map[string]float64)
	n, err := ParseQuery("#phrase(digital library)")
	if err != nil {
		t.Fatal(err)
	}
	for d, v := range (InferenceNet{}).Eval(ix.Snapshot(), n) {
		ext, _ := ix.ExtID(d)
		s[ext] = v
	}
	if _, ok := s["d1"]; !ok {
		t.Fatal("phrase did not match d1")
	}
	if v, ok := s["d2"]; ok && v > 0.4 {
		t.Errorf("phrase matched reversed order in d2 with belief %v", v)
	}
}

func TestInferenceNetSyn(t *testing.T) {
	ix := fixture(t)
	s := scoresByExt(ix, InferenceNet{}, "#syn(www nii)", t)
	// Synonym group: all three docs match as if one term.
	if len(s) != 3 {
		t.Fatalf("#syn matched %d docs, want 3", len(s))
	}
}

func TestInferenceNetDocLengthNormalization(t *testing.T) {
	ix := NewIndex(analysis.NewAnalyzer(analysis.WithoutStemming(), analysis.WithStopwords(nil)))
	ix.Add("short", "www here", nil)
	long := "www"
	for i := 0; i < 60; i++ {
		long += " padding"
	}
	ix.Add("long", long, nil)
	s := scoresByExt(ix, InferenceNet{}, "www", t)
	if s["short"] <= s["long"] {
		t.Errorf("length normalization: short doc %v <= long doc %v", s["short"], s["long"])
	}
}

func TestInferenceNetEmptyAndUnknown(t *testing.T) {
	ix := fixture(t)
	if got := (InferenceNet{}).Eval(ix.Snapshot(), nil); got != nil {
		t.Errorf("Eval(nil) = %v, want nil", got)
	}
	s := scoresByExt(ix, InferenceNet{}, "zzzunknown", t)
	if len(s) != 0 {
		t.Errorf("unknown term matched %d docs", len(s))
	}
}

func TestVectorSpaceRanking(t *testing.T) {
	ix := fixture(t)
	m := NewVectorSpace()
	s := scoresByExt(ix, m, "www nii", t)
	if s["p3"] <= s["p1"] || s["p3"] <= s["p2"] {
		t.Errorf("cosine should rank p3 (both terms) highest: %v", s)
	}
	if _, ok := s["p4"]; ok {
		t.Error("vector model scored a doc with no query terms")
	}
	for d, v := range s {
		if v <= 0 || v > 1.0000001 {
			t.Errorf("cosine(%s) = %v out of (0,1]", d, v)
		}
	}
}

func TestVectorSpaceNormCacheInvalidation(t *testing.T) {
	ix := fixture(t)
	m := NewVectorSpace()
	before := scoresByExt(ix, m, "www", t)
	// Adding a doc changes N and hence idf; scores must change.
	ix.Add("p5", "www www www", nil)
	after := scoresByExt(ix, m, "www", t)
	if len(after) != len(before)+1 {
		t.Fatalf("new doc not scored: %v", after)
	}
	if math.Abs(after["p1"]-before["p1"]) < 1e-12 {
		t.Error("scores unchanged after index mutation; stale norm cache?")
	}
}

func TestBooleanModel(t *testing.T) {
	ix := fixture(t)
	m := Boolean{}
	and := scoresByExt(ix, m, "#and(www nii)", t)
	if len(and) != 1 || and["p3"] != 1 {
		t.Errorf("#and(www nii) = %v, want exactly p3", and)
	}
	or := scoresByExt(ix, m, "#or(www nii)", t)
	if len(or) != 3 {
		t.Errorf("#or(www nii) matched %d, want 3", len(or))
	}
	not := scoresByExt(ix, m, "#and(www #not(nii))", t)
	if len(not) != 1 || not["p1"] != 1 {
		t.Errorf("#and(www #not(nii)) = %v, want exactly p1", not)
	}
	sum := scoresByExt(ix, m, "www nii", t)
	if len(sum) != 3 {
		t.Errorf("boolean #sum degraded to union of %d, want 3", len(sum))
	}
}

func TestModelByName(t *testing.T) {
	for _, name := range []string{"inference-net", "vector", "boolean"} {
		m, err := ModelByName(name)
		if err != nil {
			t.Errorf("ModelByName(%q): %v", name, err)
			continue
		}
		if m.Name() != name {
			t.Errorf("ModelByName(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := ModelByName("quantum"); err == nil {
		t.Error("ModelByName(quantum) succeeded")
	}
}

// Property: inference-net beliefs always lie in (0,1) and #and <= min
// of operand beliefs, #or >= max of operand beliefs.
func TestInferenceNetOperatorBoundsProperty(t *testing.T) {
	ix := fixture(t)
	terms := []string{"www", "nii", "telnet", "web", "filler"}
	f := func(aIdx, bIdx uint8) bool {
		a := terms[int(aIdx)%len(terms)]
		b := terms[int(bIdx)%len(terms)]
		m := InferenceNet{}
		na, _ := ParseQuery(a)
		nb, _ := ParseQuery(b)
		nAnd, _ := ParseQuery("#and(" + a + " " + b + ")")
		nOr, _ := ParseQuery("#or(" + a + " " + b + ")")
		snap := ix.Snapshot()
		sa := m.Eval(snap, na)
		sb := m.Eval(snap, nb)
		sAnd := m.Eval(snap, nAnd)
		sOr := m.Eval(snap, nOr)
		get := func(s map[DocID]float64, d DocID) float64 {
			if v, ok := s[d]; ok {
				return v
			}
			return 0.4
		}
		for d, v := range sAnd {
			va, vb := get(sa, d), get(sb, d)
			if v > math.Min(va, vb)+1e-9 {
				return false
			}
			if vo := get(sOr, d); vo < math.Max(va, vb)-1e-9 {
				return false
			}
			if v <= 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
