package irs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestEngineCollectionLifecycle(t *testing.T) {
	e := NewEngine()
	c, err := e.CreateCollection("para", nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Model().Name() != "inference-net" {
		t.Errorf("default model = %q, want inference-net", c.Model().Name())
	}
	if _, err := e.CreateCollection("para", nil); !errors.Is(err, ErrDuplicateColl) {
		t.Errorf("duplicate create: err = %v, want ErrDuplicateColl", err)
	}
	if _, err := e.Collection("ghost"); !errors.Is(err, ErrNoSuchCollection) {
		t.Errorf("missing collection: err = %v, want ErrNoSuchCollection", err)
	}
	e.CreateCollection("doc", Boolean{})
	got := e.Collections()
	if len(got) != 2 || got[0] != "doc" || got[1] != "para" {
		t.Errorf("Collections = %v, want [doc para]", got)
	}
	if err := e.DropCollection("doc"); err != nil {
		t.Fatal(err)
	}
	if err := e.DropCollection("doc"); !errors.Is(err, ErrNoSuchCollection) {
		t.Errorf("double drop: err = %v", err)
	}
}

func TestCollectionSearch(t *testing.T) {
	e := NewEngine()
	c, _ := e.CreateCollection("para", nil)
	c.AddDocument("oid1", "the world wide web is growing", map[string]string{"oid": "1"})
	c.AddDocument("oid2", "the national information infrastructure", map[string]string{"oid": "2"})
	c.AddDocument("oid3", "web and infrastructure together", map[string]string{"oid": "3"})
	rs, err := c.Search("#and(web infrastructure)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 || rs[0].ExtID != "oid3" {
		t.Errorf("top result = %v, want oid3 first", rs)
	}
	// Scores sorted descending.
	for i := 1; i < len(rs); i++ {
		if rs[i].Score > rs[i-1].Score {
			t.Errorf("results not sorted at %d: %v", i, rs)
		}
	}
	if _, err := c.Search("#broken("); err == nil {
		t.Error("Search with bad query succeeded")
	}
}

func TestCollectionUpdateDocument(t *testing.T) {
	e := NewEngine()
	c, _ := e.CreateCollection("para", nil)
	c.AddDocument("d1", "initial text about telnet", nil)
	if err := c.UpdateDocument("d1", "revised text about gopher", nil); err != nil {
		t.Fatal(err)
	}
	rs, _ := c.Search("gopher")
	if len(rs) != 1 {
		t.Errorf("updated content not searchable: %v", rs)
	}
	rs, _ = c.Search("telnet")
	if len(rs) != 0 {
		t.Errorf("old content still searchable: %v", rs)
	}
	if err := c.DeleteDocument("d1"); err != nil {
		t.Fatal(err)
	}
	if c.HasDoc("d1") {
		t.Error("HasDoc after delete")
	}
}

func TestSearchToFileRoundTrip(t *testing.T) {
	e := NewEngine()
	c, _ := e.CreateCollection("para", nil)
	c.AddDocument("a", "www content here", nil)
	c.AddDocument("b", "more www and www again", nil)
	path := filepath.Join(t.TempDir(), "result.txt")
	if err := c.SearchToFile("www", path); err != nil {
		t.Fatal(err)
	}
	fromFile, err := ParseResultFile(path)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := c.Search("www")
	if len(fromFile) != len(direct) {
		t.Fatalf("file exchange lost results: %d vs %d", len(fromFile), len(direct))
	}
	for i := range direct {
		if fromFile[i].ExtID != direct[i].ExtID {
			t.Errorf("result %d: file %q vs direct %q", i, fromFile[i].ExtID, direct[i].ExtID)
		}
		if d := fromFile[i].Score - direct[i].Score; d > 1e-6 || d < -1e-6 {
			t.Errorf("result %d: score drift %v", i, d)
		}
	}
}

func TestParseResultFileErrors(t *testing.T) {
	if _, err := ParseResultFile(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Error("missing file parsed")
	}
}

func TestSetModelExchangesParadigm(t *testing.T) {
	e := NewEngine()
	c, _ := e.CreateCollection("para", nil)
	c.AddDocument("a", "www only", nil)
	c.AddDocument("b", "nii only", nil)
	c.AddDocument("c", "www nii both", nil)
	// Probabilistic: all three docs get beliefs for #and.
	prob, _ := c.Search("#and(www nii)")
	if len(prob) != 3 {
		t.Fatalf("inference-net returned %d results, want 3", len(prob))
	}
	// Strict boolean on the same index: only the conjunction.
	c.SetModel(Boolean{})
	boolRes, _ := c.Search("#and(www nii)")
	if len(boolRes) != 1 || boolRes[0].ExtID != "c" {
		t.Errorf("boolean returned %v, want only c", boolRes)
	}
}

func TestEnginePersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e1, err := NewEngineAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := e1.CreateCollection("para", nil)
	c.AddDocument("o1", "structured documents in databases", map[string]string{"oid": "1"})
	c.AddDocument("o2", "retrieval of structured text", map[string]string{"oid": "2"})
	c.DeleteDocument("o1")
	c.AddDocument("o3", "structured hypermedia", nil)
	v, _ := e1.CreateCollection("vec", NewVectorSpace())
	v.AddDocument("x", "vector space scoring", nil)
	if err := e1.Save(); err != nil {
		t.Fatal(err)
	}

	e2, err := NewEngineAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := e2.Collections()
	if len(names) != 2 {
		t.Fatalf("loaded %v, want 2 collections", names)
	}
	c2, err := e2.Collection("para")
	if err != nil {
		t.Fatal(err)
	}
	if c2.DocCount() != 2 {
		t.Errorf("DocCount = %d, want 2", c2.DocCount())
	}
	if c2.HasDoc("o1") {
		t.Error("deleted doc o1 resurrected by load")
	}
	rs, _ := c2.Search("structured")
	if len(rs) != 2 {
		t.Errorf("search after load: %v, want 2 hits", rs)
	}
	if id, ok := c2.Index().DocID("o2"); !ok {
		t.Error("DocID(o2) not found after round trip")
	} else if m, ok := c2.Index().Meta(id, "oid"); !ok || m != "2" {
		t.Errorf("meta lost by round trip: %q %v", m, ok)
	}
	v2, _ := e2.Collection("vec")
	if v2.Model().Name() != "vector" {
		t.Errorf("model name = %q, want vector", v2.Model().Name())
	}
	// Scores identical before/after round trip.
	r1, _ := c.Search("structured text")
	r2, _ := c2.Search("structured text")
	if len(r1) != len(r2) {
		t.Fatalf("result sets differ: %v vs %v", r1, r2)
	}
	for i := range r1 {
		if r1[i].ExtID != r2[i].ExtID {
			t.Errorf("rank %d: %q vs %q", i, r1[i].ExtID, r2[i].ExtID)
		}
	}
}

func TestEngineDropCollectionRemovesFile(t *testing.T) {
	dir := t.TempDir()
	e, _ := NewEngineAt(dir)
	c, _ := e.CreateCollection("temp", nil)
	c.AddDocument("d", "x", nil)
	e.Save()
	if err := e.DropCollection("temp"); err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngineAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(e2.Collections()) != 0 {
		t.Errorf("dropped collection survived: %v", e2.Collections())
	}
}

func TestLoadCollectionRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad"+collExt)
	if err := writeFile(path, []byte("not a collection")); err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngineAt(dir); err == nil {
		t.Error("garbage collection file loaded without error")
	}
}

// writeFile is a tiny test helper (os.WriteFile with 0644).
func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestCreateCollectionNameValidation(t *testing.T) {
	e := NewEngine()
	for _, bad := range []string{"", ".", "..", "a/b", "a\\b", "name with space", "col\x00l"} {
		if _, err := e.CreateCollection(bad, nil); !errors.Is(err, ErrBadCollectionName) {
			t.Errorf("CreateCollection(%q) err = %v, want ErrBadCollectionName", bad, err)
		}
	}
	for _, good := range []string{"collPara", "para-1994", "a.b_c2"} {
		if _, err := e.CreateCollection(good, nil); err != nil {
			t.Errorf("CreateCollection(%q): %v", good, err)
		}
	}
}
