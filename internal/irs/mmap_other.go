//go:build !unix

package irs

import "os"

// mappedFile fallback for platforms without syscall.Mmap: the file is
// read into the heap once. The mapped load path behaves identically
// minus the off-heap residency (Close then has nothing to release), so
// OpenMapped stays portable.
type mappedFile struct {
	data   []byte
	mapped bool
}

func openMappedFile(path string) (*mappedFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &mappedFile{data: data}, nil
}

func (m *mappedFile) Close() error {
	if m != nil {
		m.data = nil
	}
	return nil
}
