package irs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/irs/analysis"
)

// topkVocab is a small vocabulary with a few planted topic terms; the
// zipf-ish draw below makes some terms frequent (low idf, low caps)
// and some rare (high idf), which is what gives MaxScore bounds their
// spread.
var topkVocab = []string{
	"www", "nii", "sgml", "markup", "video", "audio", "database",
	"retrieval", "coupling", "document", "passage", "window", "filler",
	"padding", "object", "oriented", "digital", "library", "query",
	"ranking",
}

// lcg is a tiny deterministic generator so the corpus is identical
// on every run and platform.
type lcg struct{ s uint64 }

func (r *lcg) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 16
}

func (r *lcg) intn(n int) int { return int(r.next() % uint64(n)) }

// buildTopkIndex populates an index with ndocs synthetic documents of
// varied length and skewed term distribution, then deletes and
// updates a slice of them so tombstones and stale (over-stated)
// max-tf bounds are part of every property run.
func buildTopkIndex(t *testing.T, shards, ndocs int, seed uint64) *Index {
	t.Helper()
	ix := NewIndexShards(analysis.NewAnalyzer(analysis.WithoutStemming(), analysis.WithStopwords(nil)), shards)
	r := &lcg{s: seed}
	for i := 0; i < ndocs; i++ {
		length := 5 + r.intn(60)
		words := make([]string, 0, length)
		for j := 0; j < length; j++ {
			// Skew: favor the front of the vocabulary.
			k := r.intn(len(topkVocab) * (1 + r.intn(3)))
			if k >= len(topkVocab) {
				k = r.intn(len(topkVocab))
			}
			words = append(words, topkVocab[k])
		}
		// Plant a phrase in some docs so #phrase queries match.
		if i%5 == 0 {
			words = append(words, "digital", "library")
		}
		if _, err := ix.Add(fmt.Sprintf("doc%03d", i), strings.Join(words, " "), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Deletions leave tombstones and stale-high max-tf bounds; updates
	// renumber documents. Both must not disturb top-k exactness.
	for i := 0; i < ndocs; i += 7 {
		if err := ix.Delete(fmt.Sprintf("doc%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 3; i < ndocs; i += 11 {
		ext := fmt.Sprintf("doc%03d", i)
		if ix.HasDoc(ext) {
			if _, err := ix.Update(ext, "www www www nii retrieval", nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	return ix
}

var topkQueries = []string{
	"www",
	"www nii retrieval",
	"#sum(www nii sgml video audio digital)",
	"#wsum(3 www 1 nii 0.5 #phrase(digital library))",
	"#wsum(2 www -1 filler)",
	"#and(www nii)",
	"#or(nii #and(sgml markup))",
	"#max(www nii #phrase(digital library))",
	"#not(www)",
	"#and(www #not(nii))",
	"#syn(www nii)",
	"#phrase(digital library)",
	"#sum(#and(www nii) #or(video audio) retrieval)",
}

// exhaustiveRanking produces the canonical full ranking from Eval.
func exhaustiveRanking(s *Snapshot, m Model, n *Node) []ScoredDoc {
	scores := m.Eval(s, n)
	out := make([]ScoredDoc, 0, len(scores))
	for d, v := range scores {
		ext, ok := s.ExtID(d)
		if !ok {
			continue
		}
		out = append(out, ScoredDoc{Doc: d, Ext: ext, Score: v})
	}
	sort.Slice(out, func(i, j int) bool { return better(out[i], out[j]) })
	return out
}

// TestEvalTopKMatchesExhaustive is the acceptance property: for every
// model, shard count, k and threshold-sharing mode, EvalTopK returns
// exactly the first k entries of the exhaustive ranking — same
// documents, same order, bit-identical scores. Running both sharing
// modes also checks that cross-shard pruning never scores *more* than
// the per-shard-only baseline: the shared threshold only ever
// dominates the local one.
func TestEvalTopKMatchesExhaustive(t *testing.T) {
	defer SetTopKThresholdSharing(true)
	for _, shards := range []int{1, 2, 3, 7} {
		ix := buildTopkIndex(t, shards, 90, 42)
		snap := ix.Snapshot()
		models := []Model{InferenceNet{}, NewVectorSpace(), Boolean{}, PassageModel{}}
		for _, m := range models {
			for _, q := range topkQueries {
				n, err := ParseQuery(q)
				if err != nil {
					t.Fatalf("parse %q: %v", q, err)
				}
				full := exhaustiveRanking(snap, m, n)
				for _, k := range []int{1, 2, 3, 5, 10, 17, 1000} {
					var baseScored int64
					for _, sharing := range []bool{false, true} {
						SetTopKThresholdSharing(sharing)
						res := m.EvalTopK(snap, n, k)
						want := full
						if len(want) > k {
							want = want[:k]
						}
						if len(res.Hits) != len(want) {
							t.Fatalf("%s shards=%d %q k=%d sharing=%v: got %d hits, want %d",
								m.Name(), shards, q, k, sharing, len(res.Hits), len(want))
						}
						for i := range want {
							got := res.Hits[i]
							if got.Ext != want[i].Ext || got.Score != want[i].Score {
								t.Fatalf("%s shards=%d %q k=%d sharing=%v rank %d: got (%s, %v), want (%s, %v)",
									m.Name(), shards, q, k, sharing, i, got.Ext, got.Score, want[i].Ext, want[i].Score)
							}
						}
						if res.Scored < int64(len(res.Hits)) {
							t.Fatalf("%s %q k=%d: scored %d < returned %d", m.Name(), q, k, res.Scored, len(res.Hits))
						}
						if !sharing {
							baseScored = res.Scored
							if res.ShardsSkipped != 0 {
								t.Fatalf("%s %q k=%d: sharing off but ShardsSkipped=%d", m.Name(), q, k, res.ShardsSkipped)
							}
						} else if res.Scored > baseScored {
							t.Fatalf("%s shards=%d %q k=%d: sharing scored %d > per-shard baseline %d",
								m.Name(), shards, q, k, res.Scored, baseScored)
						}
					}
				}
			}
		}
	}
}

// TestEvalTopKPrunes ensures the machinery is not vacuous: on a
// skewed bag-of-words query with small k, a real fraction of the
// candidates must be skipped without scoring.
func TestEvalTopKPrunes(t *testing.T) {
	ix := buildTopkIndex(t, 3, 300, 7)
	snap := ix.Snapshot()
	n, err := ParseQuery("#sum(www nii sgml video audio digital retrieval)")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Model{InferenceNet{}, NewVectorSpace(), PassageModel{}} {
		res := m.EvalTopK(snap, n, 5)
		if res.Pruned == 0 {
			t.Errorf("%s: top-5 over %d candidates pruned nothing", m.Name(), res.Scored+res.Pruned)
		}
	}
}

// TestEvalTopKStaleBoundsSound deletes the documents with the
// heaviest term frequencies (leaving their stale-high max-tf bounds
// behind) and verifies top-k remains exact.
func TestEvalTopKStaleBoundsSound(t *testing.T) {
	ix := NewIndex(analysis.NewAnalyzer(analysis.WithoutStemming(), analysis.WithStopwords(nil)))
	ix.Add("heavy", strings.Repeat("www ", 50)+"nii", nil)
	for i := 0; i < 20; i++ {
		ix.Add(fmt.Sprintf("d%02d", i), "www nii filler padding content", nil)
	}
	if err := ix.Delete("heavy"); err != nil {
		t.Fatal(err)
	}
	snap := ix.Snapshot()
	// The live max tf of "www" is 1, but the maintained bound is 50.
	if got := snap.termMaxTFShard(0, "www"); got != 50 {
		t.Fatalf("stale bound = %d, want 50 (stale-high by design)", got)
	}
	n, _ := ParseQuery("#sum(www nii)")
	for _, m := range []Model{InferenceNet{}, NewVectorSpace(), PassageModel{}} {
		full := exhaustiveRanking(snap, m, n)
		res := m.EvalTopK(snap, n, 3)
		for i := range res.Hits {
			if res.Hits[i].Ext != full[i].Ext || res.Hits[i].Score != full[i].Score {
				t.Fatalf("%s: rank %d diverged under stale bounds", m.Name(), i)
			}
		}
	}
	// Compaction recomputes the bound exactly.
	ix.Compact()
	snap = ix.Snapshot()
	if got := snap.termMaxTFShard(0, "www"); got != 1 {
		t.Fatalf("post-compact bound = %d, want 1", got)
	}
}

// TestAutoCompactTightensBounds is the stale-bound-decay regression
// test: per-term max-tf bounds only ever grow within a shard
// generation, so a delete-heavy collection prunes ever less — until a
// compaction recomputes them. The *policy-triggered background*
// compaction (not just a manual Compact) must tighten the bounds
// exactly and reset the BoundsStaleness gauge, and Reshard must do
// the same.
func TestAutoCompactTightensBounds(t *testing.T) {
	ix := NewIndex(analysis.NewAnalyzer(analysis.WithoutStemming(), analysis.WithStopwords(nil)))
	ix.Add("heavy", strings.Repeat("www ", 50)+"nii", nil)
	for i := 0; i < 60; i++ {
		ix.Add(fmt.Sprintf("d%02d", i), "www nii filler", nil)
	}
	if st := ix.BoundsStaleness(); st != 0 {
		t.Fatalf("staleness of an add-only index = %v, want 0", st)
	}
	if err := ix.Delete("heavy"); err != nil {
		t.Fatal(err)
	}
	// The live max tf of "www" is now 1 but the maintained bound is
	// still 50 — sound, but visibly stale.
	if got := ix.Snapshot().termMaxTFShard(0, "www"); got != 50 {
		t.Fatalf("pre-compact bound = %d, want stale 50", got)
	}
	if st := ix.BoundsStaleness(); st <= 0 {
		t.Fatalf("staleness after stale-making delete = %v, want > 0", st)
	}
	// Arm the policy and trip it with one more tombstone: dead=2 of 62
	// exceeds ratio 0.02 with the floor at 1.
	ix.SetAutoCompact(0.02, 1)
	if err := ix.Delete("d00"); err != nil {
		t.Fatal(err)
	}
	ix.WaitCompaction()
	if n := ix.Compactions(); n == 0 {
		t.Fatal("tombstone-ratio policy did not trigger a compaction")
	}
	if got := ix.Snapshot().termMaxTFShard(0, "www"); got != 1 {
		t.Fatalf("post-auto-compact bound = %d, want exact 1", got)
	}
	if st := ix.BoundsStaleness(); st != 0 {
		t.Fatalf("staleness after auto-compact = %v, want 0", st)
	}

	// Reshard recomputes bounds exactly too (fresh run: Reshard resets
	// the tombstone counters the policy watches).
	ix2 := NewIndex(analysis.NewAnalyzer(analysis.WithoutStemming(), analysis.WithStopwords(nil)))
	ix2.Add("heavy", strings.Repeat("nii ", 40)+"www", nil)
	for i := 0; i < 10; i++ {
		ix2.Add(fmt.Sprintf("d%02d", i), "nii www filler", nil)
	}
	if err := ix2.Delete("heavy"); err != nil {
		t.Fatal(err)
	}
	ix2.Reshard(3)
	found := false
	snap := ix2.Snapshot()
	for si := 0; si < snap.ShardCount(); si++ {
		if b := snap.termMaxTFShard(si, "nii"); b > 1 {
			t.Fatalf("post-Reshard bound in shard %d = %d, want <= 1", si, b)
		} else if b == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("no shard carries the live nii bound after Reshard")
	}
	if st := ix2.BoundsStaleness(); st != 0 {
		t.Fatalf("staleness after Reshard = %v, want 0", st)
	}
}

// TestTopKHeapTieBreak exercises the heap's canonical order directly:
// equal scores keep the smallest external ids.
func TestTopKHeapTieBreak(t *testing.T) {
	h := newTopKHeap(3)
	ext := map[DocID]string{1: "e", 2: "a", 3: "c", 4: "b", 5: "d"}
	extOf := func(d DocID) string { return ext[d] }
	for _, d := range []DocID{1, 2, 3, 4, 5} {
		h.offer(d, 1.0, extOf)
	}
	got := mergeTopK([][]ScoredDoc{h.entries}, 3)
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if got[i].Ext != w {
			t.Fatalf("tie-break rank %d = %q, want %q (full: %v)", i, got[i].Ext, w, got)
		}
	}
}

// TestIntervalCombineSoundness spot-checks the interval operators
// against direct evaluation on grids of operand values.
func TestIntervalCombineSoundness(t *testing.T) {
	vals := []float64{0, 0.1, 0.4, 0.7, 1}
	within := func(v float64, iv interval) bool { return v >= iv.lo && v <= iv.hi }
	kids := []interval{{0.1, 0.7}, {0.4, 1}}
	for _, a := range vals {
		if a < 0.1 || a > 0.7 {
			continue
		}
		for _, b := range vals {
			if b < 0.4 || b > 1 {
				continue
			}
			if v := a * b; !within(v, combineInterval(NodeAnd, nil, kids, 0.4)) {
				t.Errorf("#and(%v,%v)=%v outside interval", a, b, v)
			}
			if v := 1 - (1-a)*(1-b); !within(v, combineInterval(NodeOr, nil, kids, 0.4)) {
				t.Errorf("#or(%v,%v)=%v outside interval", a, b, v)
			}
			if v := (a + b) / 2; !within(v, combineInterval(NodeSum, nil, kids, 0.4)) {
				t.Errorf("#sum(%v,%v)=%v outside interval", a, b, v)
			}
			w := []float64{2, -1}
			if v := (2*a - b) / 1; !within(v, combineInterval(NodeWSum, w, kids, 0.4)) {
				t.Errorf("#wsum(2 %v -1 %v)=%v outside interval", a, b, v)
			}
			if v := math.Max(0, math.Max(a, b)); !within(v, combineInterval(NodeMax, nil, kids, 0.4)) {
				t.Errorf("#max(%v,%v)=%v outside interval", a, b, v)
			}
		}
	}
}

// TestInferenceNetExplicitZeroBelief is the regression test for the
// DefaultBelief zero-value conflation: an explicit 0.0 belief must be
// honored, not silently replaced by 0.4.
func TestInferenceNetExplicitZeroBelief(t *testing.T) {
	ix := NewIndex(analysis.NewAnalyzer(analysis.WithoutStemming(), analysis.WithStopwords(nil)))
	ix.Add("both", "www nii", nil)
	ix.Add("onlywww", "www filler", nil)
	snap := ix.Snapshot()
	n, _ := ParseQuery("#sum(www nii)")

	zero := InferenceNet{DefaultBelief: Belief(0)}
	if got := zero.defaultBelief(); got != 0 {
		t.Fatalf("explicit zero belief resolved to %v", got)
	}
	if got := (InferenceNet{}).defaultBelief(); got != 0.4 {
		t.Fatalf("unset belief resolved to %v, want 0.4", got)
	}
	// The passage model uses the same pointer convention.
	if got := (PassageModel{DefaultBelief: Belief(0)}).defaultBelief(); got != 0 {
		t.Fatalf("passage explicit zero belief resolved to %v", got)
	}
	if got := (PassageModel{}).defaultBelief(); got != 0.4 {
		t.Fatalf("passage unset belief resolved to %v, want 0.4", got)
	}
	s := zero.Eval(snap, n)
	var only DocID
	for d := range s {
		if ext, _ := snap.ExtID(d); ext == "onlywww" {
			only = d
		}
	}
	// With belief 0, the missing "nii" evidence contributes exactly 0
	// to the mean — under the old conflation it contributed 0.4/2.
	def := InferenceNet{}.Eval(snap, n)
	if s[only] >= def[only] {
		t.Errorf("explicit zero belief did not lower the score: zero=%v default=%v", s[only], def[only])
	}
	if s[only] <= 0 {
		t.Errorf("score with zero belief should still carry www evidence: %v", s[only])
	}
	// Top-k stays exact under a non-default belief too.
	full := exhaustiveRanking(snap, zero, n)
	res := zero.EvalTopK(snap, n, 1)
	if len(res.Hits) != 1 || res.Hits[0].Ext != full[0].Ext || res.Hits[0].Score != full[0].Score {
		t.Errorf("top-1 under zero belief diverged: %v vs %v", res.Hits, full[:1])
	}
}
