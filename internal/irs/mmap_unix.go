//go:build unix

package irs

import (
	"fmt"
	"os"
	"syscall"
)

// mappedFile is a read-only memory mapping of a collection file. The
// v5 reader aliases posting-block streams and the forward-index blob
// straight into data, so the mapping must outlive every structure
// built from it — Index.Close is the release point.
type mappedFile struct {
	data   []byte
	mapped bool // false for empty files (nothing to unmap)
}

// openMappedFile maps path read-only, shared — the OS page cache backs
// the bytes and evicts cold blocks for free.
func openMappedFile(path string) (*mappedFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &mappedFile{}, nil
	}
	if size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("file too large to map (%d bytes)", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmap: %w", err)
	}
	return &mappedFile{data: data, mapped: true}, nil
}

// Close unmaps the file. The caller must guarantee no reads against
// the mapping remain in flight — touching an aliased block afterwards
// faults.
func (m *mappedFile) Close() error {
	if m == nil || !m.mapped {
		return nil
	}
	data := m.data
	m.data, m.mapped = nil, false
	if err := syscall.Munmap(data); err != nil {
		return fmt.Errorf("munmap: %w", err)
	}
	return nil
}
