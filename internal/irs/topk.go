package irs

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Streaming top-k evaluation with MaxScore-style pruning.
//
// The exhaustive Eval path materializes a score for every candidate
// document, and serving layers then keep only the first `limit`
// entries of the sorted result — the classic "score everything, sort,
// truncate" shape. EvalTopK inverts it: every shard streams its
// candidates through a bounded min-heap, and a per-document score
// *upper bound* — derived from per-term statistics the index maintains
// incrementally (max within-document tf per posting list, minimum live
// document length per shard) — lets the shard skip scoring candidates
// that provably cannot enter the top k. This is the index-side
// upper-bound discipline of Turtle & Flood's MaxScore, generalized to
// the operator query language: per-leaf caps propagate through the
// operator tree by interval arithmetic (sound under #not and negative
// #wsum weights, where plain monotone maxima are not).
//
// Shards do not prune in isolation: every evaluation shares one
// cross-shard threshold (sharedThreshold) that each shard's bounded
// heap raises as its local k-th score improves and prunes against,
// so a hot shard's high k-th score terminates cold shards early. A
// two-phase scheduler (runTopK) makes the sharing effective: phase 1
// seeds every shard with its highest-upper-bound candidates to warm
// the threshold, phase 2 finishes the scans in descending
// shard-upper-bound order, skipping shards whose best remaining bound
// already falls below the shared threshold.
//
// Exactness contract: EvalTopK returns *exactly* the first k entries,
// bit-identical scores included, of the exhaustive ranking under the
// canonical order (score descending, external id ascending). Pruning
// only ever skips a document whose upper bound is strictly below the
// current k-th score — locally the shard's own, globally a proven
// lower bound on the global k-th (k real scores at or above it exist
// somewhere); every surviving document is scored by the very same
// code path Eval uses, so floating-point results cannot diverge.
// The bounds themselves stay sound under concurrent mutation: max-tf
// only grows within a shard generation (deletes leave it stale-high,
// which weakens pruning but never correctness) and min-length only
// matters as a lower bound; compaction recomputes both exactly
// (reloads rebuild them from the persisted postings, which may keep
// them stale-high/-low in the sound direction — see index.go).

// ScoredDoc is one ranked hit of a top-k evaluation.
type ScoredDoc struct {
	Doc   DocID
	Ext   string
	Score float64
}

// TopKResult is the outcome of Model.EvalTopK: the k best hits in
// canonical order plus the pruning counters serving layers report
// (Scored + Pruned = number of candidate documents). ShardsSkipped
// counts shards whose entire phase-2 remainder was discarded by the
// cross-shard threshold alone — shards a per-shard-only scan would
// still have walked (see runTopK). The three phase timers attribute
// the evaluation's wall time to the scheduler's stages — prep+seed
// (bound construction and threshold warming), finish (bounded
// remainder scans) and merge (folding per-shard winners) — and feed
// the obs stage histograms and per-request trace spans.
// BlocksSkipped and PostingsDecoded report the block-storage
// counters (see cursor.go): blocks whose compressed tf/position
// payloads were never expanded during the evaluation, and postings
// whose payloads were. Both cover only evaluations where pruning was
// possible (a shardTask with bounds attached); exhaustive fallbacks
// decode everything and report zero.
type TopKResult struct {
	Hits            []ScoredDoc
	Scored          int64
	Pruned          int64
	ShardsSkipped   int64
	BlocksSkipped   int64
	PostingsDecoded int64
	SeedNanos       int64
	FinishNanos     int64
	MergeNanos      int64
}

// better is the canonical ranking order: higher score first, ties by
// ascending external id (the OID string), so top-k boundaries are
// stable and identical to the exhaustive sort in SearchNodeAt.
func better(a, b ScoredDoc) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Ext < b.Ext
}

// topKHeap is a bounded min-heap keeping the k best ScoredDocs seen
// so far; the root is the worst entry kept (the current k-th), whose
// score is the pruning threshold.
type topKHeap struct {
	k       int
	entries []ScoredDoc
}

func newTopKHeap(k int) *topKHeap {
	// Pre-size only up to a sane cap: k is caller-supplied (ultimately
	// a client limit), and a huge k must not translate into a huge
	// up-front allocation per shard — append grows the backing array
	// to the candidates actually kept.
	c := k
	if c > 1024 {
		c = 1024
	}
	return &topKHeap{k: k, entries: make([]ScoredDoc, 0, c)}
}

// threshold returns the current k-th best score; full is false while
// fewer than k entries are held (no pruning possible yet).
func (h *topKHeap) threshold() (score float64, full bool) {
	if len(h.entries) < h.k {
		return 0, false
	}
	return h.entries[0].Score, true
}

// offer inserts a scored document, evicting the current worst when
// the heap is full and the newcomer ranks better. ext is fetched
// lazily — only when the document actually enters the heap.
func (h *topKHeap) offer(doc DocID, score float64, ext func(DocID) string) {
	if h.k <= 0 {
		return
	}
	if len(h.entries) < h.k {
		h.entries = append(h.entries, ScoredDoc{Doc: doc, Ext: ext(doc), Score: score})
		h.up(len(h.entries) - 1)
		return
	}
	root := &h.entries[0]
	if score < root.Score {
		return
	}
	e := ScoredDoc{Doc: doc, Ext: ext(doc), Score: score}
	if !better(e, *root) {
		return
	}
	h.entries[0] = e
	h.down(0)
}

func (h *topKHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !better(h.entries[p], h.entries[i]) {
			break
		}
		h.entries[p], h.entries[i] = h.entries[i], h.entries[p]
		i = p
	}
}

func (h *topKHeap) down(i int) {
	n := len(h.entries)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && better(h.entries[worst], h.entries[l]) {
			worst = l
		}
		if r < n && better(h.entries[worst], h.entries[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.entries[i], h.entries[worst] = h.entries[worst], h.entries[i]
		i = worst
	}
}

// mergeTopK folds per-shard top-k lists (already the exact per-shard
// winners) into the global top k in canonical order.
func mergeTopK(perShard [][]ScoredDoc, k int) []ScoredDoc {
	var all []ScoredDoc
	for _, hs := range perShard {
		all = append(all, hs...)
	}
	sort.Slice(all, func(i, j int) bool { return better(all[i], all[j]) })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// --- interval arithmetic over the operator tree ---------------------

// interval is a closed score interval [lo, hi]. Leaf beliefs of
// candidate documents always lie inside their leaf interval, and every
// operator's interval evaluation mirrors the scorer's own sequential
// float operations, so operator results stay inside the combined
// interval even at floating-point granularity (correctly rounded
// +, *, / are monotone in each operand).
type interval struct{ lo, hi float64 }

func pointIv(v float64) interval { return interval{v, v} }

// mulIv multiplies two intervals with full sign handling (negative
// values reach the tree through negative #wsum weights).
func mulIv(a, b interval) interval {
	p1, p2, p3, p4 := a.lo*b.lo, a.lo*b.hi, a.hi*b.lo, a.hi*b.hi
	return interval{
		math.Min(math.Min(p1, p2), math.Min(p3, p4)),
		math.Max(math.Max(p1, p2), math.Max(p3, p4)),
	}
}

// combineInterval evaluates one operator over child intervals,
// mirroring the combination semantics shared by the inference-net and
// passage scorers (product #and, complement-product #or, complement
// #not, mean #sum, weighted mean #wsum with zero-weight fallback to
// the default belief b, zero-floored #max).
func combineInterval(kind NodeKind, weights []float64, kids []interval, b float64) interval {
	switch kind {
	case NodeAnd:
		iv := pointIv(1)
		for _, k := range kids {
			iv = mulIv(iv, k)
		}
		return iv
	case NodeOr:
		q := pointIv(1)
		for _, k := range kids {
			q = mulIv(q, interval{1 - k.hi, 1 - k.lo})
		}
		return interval{1 - q.hi, 1 - q.lo}
	case NodeNot:
		return interval{1 - kids[0].hi, 1 - kids[0].lo}
	case NodeSum:
		var lo, hi float64
		for _, k := range kids {
			lo += k.lo
			hi += k.hi
		}
		m := float64(len(kids))
		return interval{lo / m, hi / m}
	case NodeWSum:
		var lo, hi, w float64
		for i, k := range kids {
			if weights[i] >= 0 {
				lo += weights[i] * k.lo
				hi += weights[i] * k.hi
			} else {
				lo += weights[i] * k.hi
				hi += weights[i] * k.lo
			}
			w += weights[i]
		}
		if w == 0 {
			return pointIv(b)
		}
		if w < 0 {
			return interval{hi / w, lo / w}
		}
		return interval{lo / w, hi / w}
	case NodeMax:
		// The scorers start from best = 0.0, so the result is floored
		// at zero even when every child is negative.
		iv := pointIv(0)
		for i, k := range kids {
			if i == 0 {
				iv = interval{math.Max(0, k.lo), math.Max(0, k.hi)}
				continue
			}
			iv = interval{math.Max(iv.lo, k.lo), math.Max(iv.hi, k.hi)}
		}
		return iv
	}
	return pointIv(b)
}

// nodeBoundAt evaluates the subtree's score interval for one
// candidate document. It folds each operator's children in the same
// sequential order as combineInterval (identical float results) but
// without allocating per-node child slices — it runs once per
// candidate, which is the hot path of bound construction. leafIv
// supplies each leaf's belief interval at d, typically refined from
// the max tf of d's containing block (Block-Max-MaxScore).
func nodeBoundAt(n *Node, b float64, d DocID, leafIv func(*Node, DocID) interval) interval {
	switch n.Kind {
	case NodeTerm, NodePhrase, NodeSyn:
		return leafIv(n, d)
	case NodeAnd:
		iv := pointIv(1)
		for _, c := range n.Children {
			iv = mulIv(iv, nodeBoundAt(c, b, d, leafIv))
		}
		return iv
	case NodeOr:
		q := pointIv(1)
		for _, c := range n.Children {
			k := nodeBoundAt(c, b, d, leafIv)
			q = mulIv(q, interval{1 - k.hi, 1 - k.lo})
		}
		return interval{1 - q.hi, 1 - q.lo}
	case NodeNot:
		k := nodeBoundAt(n.Children[0], b, d, leafIv)
		return interval{1 - k.hi, 1 - k.lo}
	case NodeSum:
		var lo, hi float64
		for _, c := range n.Children {
			k := nodeBoundAt(c, b, d, leafIv)
			lo += k.lo
			hi += k.hi
		}
		m := float64(len(n.Children))
		return interval{lo / m, hi / m}
	case NodeWSum:
		var lo, hi, w float64
		for i, c := range n.Children {
			k := nodeBoundAt(c, b, d, leafIv)
			if n.Weights[i] >= 0 {
				lo += n.Weights[i] * k.lo
				hi += n.Weights[i] * k.hi
			} else {
				lo += n.Weights[i] * k.hi
				hi += n.Weights[i] * k.lo
			}
			w += n.Weights[i]
		}
		if w == 0 {
			return pointIv(b)
		}
		if w < 0 {
			return interval{hi / w, lo / w}
		}
		return interval{lo / w, hi / w}
	case NodeMax:
		iv := pointIv(0)
		for i, c := range n.Children {
			k := nodeBoundAt(c, b, d, leafIv)
			if i == 0 {
				iv = interval{math.Max(0, k.lo), math.Max(0, k.hi)}
				continue
			}
			iv = interval{math.Max(iv.lo, k.lo), math.Max(iv.hi, k.hi)}
		}
		return iv
	}
	return pointIv(b)
}

// leavesOf collects the term/phrase/syn leaves of a subtree (not
// descending into phrase/syn children, mirroring the evaluators'
// leaf granularity).
func leavesOf(n *Node) []*Node {
	switch n.Kind {
	case NodeTerm, NodePhrase, NodeSyn:
		return []*Node{n}
	}
	var out []*Node
	for _, c := range n.Children {
		out = append(out, leavesOf(c)...)
	}
	return out
}

// --- cross-shard threshold sharing ----------------------------------

// topkSharingOff disables the cross-shard threshold (and with it the
// two-phase scheduler) when set, reproducing the per-shard-only
// pruning of the earlier engine. It exists for A/B measurement
// (EXP-S4) and for property tests that compare both modes; serving
// code never touches it.
var topkSharingOff atomic.Bool

// SetTopKThresholdSharing toggles cross-shard top-k threshold sharing
// (on by default). Off reproduces the per-shard-only baseline: every
// shard prunes against its own k-th score only. Rankings are
// bit-identical either way — the toggle trades work, not results.
func SetTopKThresholdSharing(on bool) { topkSharingOff.Store(!on) }

// TopKThresholdSharing reports whether cross-shard threshold sharing
// is enabled.
func TopKThresholdSharing() bool { return !topkSharingOff.Load() }

// topkBlockMaxOff disables block-level bound refinement when set:
// per-candidate bounds fall back to the whole-list maxTF statistics
// (the flat-posting engine's pruning), which is what EXP-S5 and
// BenchmarkTopKBlockMax measure against. Storage stays block
// compressed either way.
var topkBlockMaxOff atomic.Bool

// SetTopKBlockMax toggles block-max bound refinement (on by default).
// Off reproduces the whole-list-bound baseline. Rankings are
// bit-identical either way — like threshold sharing, the toggle
// trades work, not results.
func SetTopKBlockMax(on bool) { topkBlockMaxOff.Store(!on) }

// TopKBlockMax reports whether block-max bound refinement is enabled.
func TopKBlockMax() bool { return !topkBlockMaxOff.Load() }

// sharedThreshold is the cross-shard pruning state of one top-k
// evaluation: the best k-th score any shard's bounded heap has
// reached so far, stored as atomic float bits and raised by monotone
// CAS. The value is always a *lower bound on the global k-th best
// score* — a shard holding k scored documents at or above t proves at
// least k documents score ≥ t globally — so any candidate whose score
// upper bound is strictly below it can be discarded by every shard,
// not just the one that raised it. A nil *sharedThreshold disables
// sharing (single-shard evaluations and the A/B baseline).
type sharedThreshold struct {
	bits atomic.Uint64 // Float64bits; -Inf = no full heap yet
}

func newSharedThreshold() *sharedThreshold {
	st := &sharedThreshold{}
	st.bits.Store(math.Float64bits(math.Inf(-1)))
	return st
}

// get returns the current shared threshold; ok is false while no
// shard has filled its heap yet (or sharing is disabled).
func (st *sharedThreshold) get() (float64, bool) {
	if st == nil {
		return 0, false
	}
	v := math.Float64frombits(st.bits.Load())
	return v, !math.IsInf(v, -1)
}

// raise lifts the threshold to v if v improves it (monotone CAS loop;
// concurrent raises settle on the maximum).
func (st *sharedThreshold) raise(v float64) {
	if st == nil {
		return
	}
	for {
		old := st.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if st.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// --- per-shard streaming scan ---------------------------------------

// boundedCand pairs a candidate with its score upper bound.
type boundedCand struct {
	d     DocID
	bound float64
}

// shardTask is what a model contributes per shard: the candidate
// documents, the exact scorer (the very same code path the exhaustive
// evaluator uses) and an optional score upper bound. boundOf nil means
// pruning is impossible in this shard (no usable bound state, or at
// most k candidates) — every candidate is scored. stats, when set,
// reports the shard's block decode counters once the evaluation is
// done (models attach it only alongside boundOf: the counters measure
// what pruning saved).
type shardTask struct {
	ids     []DocID
	boundOf func(DocID) float64
	scoreOf func(DocID) float64
	stats   func() (blocksSkipped, postingsDecoded int64)
}

// shardScan is the resumable streaming scan of one shard. Candidates
// are visited in descending bound order, each survivor is scored
// exactly, and the scan stops — pruning the entire remainder — as
// soon as the next bound falls strictly below the effective
// threshold: the worse of nothing, the local heap's k-th score, and
// the shared cross-shard threshold. Strictness matters: a document
// whose bound *equals* the threshold could still win its tie on
// external id, so it is scored.
//
// The scan runs in two phases (see runTopK): seed scores at most the
// k highest-bound candidates, finish consumes the remainder under the
// warmed shared threshold. Splitting changes which documents are
// scored, never which are returned: pruning only ever discards
// documents provably outside the global top k.
type shardScan struct {
	k       int
	task    shardTask
	ext     func(DocID) string
	shared  *sharedThreshold
	h       *topKHeap
	cands   []boundedCand // sorted by descending bound; nil = unbounded
	next    int           // scan position within cands
	seedEnd int           // next at the end of phase 1
	scored  int64
	pruned  int64
	skipped bool // whole remainder discarded by the shared threshold alone
}

func newShardScan(k int, t shardTask, ext func(DocID) string, shared *sharedThreshold) *shardScan {
	sc := &shardScan{k: k, task: t, ext: ext, shared: shared, h: newTopKHeap(k)}
	if t.boundOf != nil && len(t.ids) > k {
		sc.cands = make([]boundedCand, len(t.ids))
		for i, d := range t.ids {
			sc.cands[i] = boundedCand{d: d, bound: t.boundOf(d)}
		}
		sort.Slice(sc.cands, func(i, j int) bool {
			if sc.cands[i].bound != sc.cands[j].bound {
				return sc.cands[i].bound > sc.cands[j].bound
			}
			return sc.cands[i].d < sc.cands[j].d
		})
	}
	return sc
}

// offer scores d into the local heap and, once the heap is full,
// publishes its k-th score to the shared threshold — every heap entry
// is a real document score, so the raise is always a sound global
// lower bound.
func (sc *shardScan) offer(d DocID, score float64) {
	sc.scored++
	sc.h.offer(d, score, sc.ext)
	if sc.shared != nil {
		if th, full := sc.h.threshold(); full {
			sc.shared.raise(th)
		}
	}
}

// effective returns the strongest pruning threshold currently
// available to this shard: the max of its own full heap's k-th score
// and the shared cross-shard threshold.
func (sc *shardScan) effective() (float64, bool) {
	th, full := sc.h.threshold()
	sv, sok := sc.shared.get()
	switch {
	case full && sok:
		return math.Max(th, sv), true
	case full:
		return th, true
	case sok:
		return sv, true
	}
	return 0, false
}

// seed is phase 1: warm the thresholds cheaply. Unbounded shards are
// consumed whole (they must score everything anyway, and doing it now
// contributes their k-th scores to the shared threshold before any
// bounded remainder is walked); bounded shards score exactly their
// min(k, n) highest-bound candidates — the candidates a per-shard-only
// scan would score unconditionally too, so the seed never does extra
// work.
func (sc *shardScan) seed() {
	if sc.cands == nil {
		for _, d := range sc.task.ids {
			sc.offer(d, sc.task.scoreOf(d))
		}
		return
	}
	for sc.next < len(sc.cands) && sc.next < sc.k {
		d := sc.cands[sc.next].d
		sc.next++
		sc.offer(d, sc.task.scoreOf(d))
	}
	sc.seedEnd = sc.next
}

// remaining reports how many candidates phase 2 still has to consider.
func (sc *shardScan) remaining() int { return len(sc.cands) - sc.next }

// pruneRemainder discards everything from next on. When phase 2 has
// not scored a single candidate of this shard yet, the whole phase-2
// remainder was retired without touching a posting — attributed to
// the *shared* threshold (TopKStats.ShardsSkipped) only when the
// local one alone would not have sufficed; that difference is exactly
// the cross-shard win.
func (sc *shardScan) pruneRemainder(bound float64) {
	if sc.next == sc.seedEnd {
		lth, lfull := sc.h.threshold()
		sc.skipped = !lfull || bound >= lth
	}
	sc.pruned += int64(sc.remaining())
	sc.next = len(sc.cands)
}

// skipAll is the phase-2 launch check: if the shard's best remaining
// bound is already strictly below the effective threshold, the
// remainder is discarded before a scan goroutine is even spawned.
func (sc *shardScan) skipAll() bool {
	if sc.remaining() == 0 {
		return false
	}
	b := sc.cands[sc.next].bound
	eff, ok := sc.effective()
	if !ok || b >= eff {
		return false
	}
	sc.pruneRemainder(b)
	return true
}

// finish is phase 2: consume the bounded remainder, re-checking the
// effective threshold before every candidate so a raise from a hotter
// shard terminates this one mid-scan (on the very first candidate,
// that still counts as a whole-shard skip — the launch check and the
// first loop iteration differ only in which goroutine ran them).
func (sc *shardScan) finish() {
	for sc.next < len(sc.cands) {
		b := sc.cands[sc.next].bound
		if eff, ok := sc.effective(); ok && b < eff {
			sc.pruneRemainder(b)
			return
		}
		d := sc.cands[sc.next].d
		sc.next++
		sc.offer(d, sc.task.scoreOf(d))
	}
}

// runTopK is the shared evaluation driver behind every model's
// EvalTopK: it builds one shardScan per shard (prep runs fan-out, so
// bound construction and sorting parallelize), then schedules the
// scans in two phases.
//
// Phase 1 (parallel) seeds every shard: each scores at most its k
// highest-upper-bound candidates, filling its bounded heap and
// raising the shared threshold to the best k-th score seen anywhere.
//
// Phase 2 visits the bounded remainders in descending
// best-remaining-bound order — hottest shard first, so its raises
// land before colder shards commit to work. A shard whose best
// remaining bound is already below the warmed threshold is skipped
// wholesale (counted in ShardsSkipped when the shared threshold alone
// justified it); the rest finish concurrently, each re-checking the
// shared threshold per candidate.
//
// Sharing is disabled (nil threshold) for single-shard snapshots and
// when SetTopKThresholdSharing(false) selects the per-shard-only
// baseline; both phases then collapse into one independent scan per
// shard with unchanged per-shard work.
func runTopK(s *Snapshot, k int, prep func(si int) shardTask, ext func(DocID) string) TopKResult {
	nsh := s.ShardCount()
	var shared *sharedThreshold
	if nsh > 1 && TopKThresholdSharing() {
		shared = newSharedThreshold()
	}
	t0 := time.Now()
	scans := make([]*shardScan, nsh)
	s.parShards(func(si int) {
		scans[si] = newShardScan(k, prep(si), ext, shared)
		scans[si].seed()
		if shared == nil {
			scans[si].finish()
		}
	})
	var res TopKResult
	t1 := time.Now()
	res.SeedNanos = t1.Sub(t0).Nanoseconds()
	if shared != nil {
		order := make([]int, 0, nsh)
		for si, sc := range scans {
			if sc.remaining() > 0 {
				order = append(order, si)
			}
		}
		sort.Slice(order, func(i, j int) bool {
			a, b := scans[order[i]], scans[order[j]]
			if a.cands[a.next].bound != b.cands[b.next].bound {
				return a.cands[a.next].bound > b.cands[b.next].bound
			}
			return order[i] < order[j]
		})
		inline := runtime.GOMAXPROCS(0) == 1
		var wg sync.WaitGroup
		for _, si := range order {
			sc := scans[si]
			if sc.skipAll() {
				continue
			}
			if inline {
				sc.finish()
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc.finish()
			}()
		}
		wg.Wait()
	}
	t2 := time.Now()
	res.FinishNanos = t2.Sub(t1).Nanoseconds()
	perShard := make([][]ScoredDoc, nsh)
	for si, sc := range scans {
		perShard[si] = sc.h.entries
		res.Scored += sc.scored
		res.Pruned += sc.pruned
		if sc.skipped {
			res.ShardsSkipped++
		}
		// Decode counters are folded here, after every scan goroutine
		// has finished, so the lazily-mutated view state is read
		// race-free.
		if sc.task.stats != nil && sc.task.boundOf != nil {
			bs, pd := sc.task.stats()
			res.BlocksSkipped += bs
			res.PostingsDecoded += pd
		}
	}
	res.Hits = mergeTopK(perShard, k)
	res.MergeNanos = time.Since(t2).Nanoseconds()
	return res
}

// snapExt adapts Snapshot.ExtID for heap insertion (candidates are
// live by construction).
func snapExt(s *Snapshot) func(DocID) string {
	return func(d DocID) string {
		ext, _ := s.ExtID(d)
		return ext
	}
}
