// Package obs is the repro's dependency-free observability layer:
// lock-free HDR-style latency histograms, an atomic sliding-window
// rate counter, a metric registry with Prometheus text exposition,
// lightweight per-request traces with stage spans, and a
// ring-buffered slow-query log.
//
// The paper's OODBMS–IRS coupling lives or dies on where time goes at
// the seam — analysis vs. commit, bound-pruned scoring vs. merge —
// so every layer records into this package: the IRS top-k scheduler
// times its seed/finish/merge phases, the coupling's flush pipeline
// times its analyze/commit stages, and the serving layer times every
// endpoint per collection. All primitives are safe for concurrent
// use and cheap enough to stay on by default (a handful of atomic
// operations per record); SetEnabled(false) turns every record into
// a near-free no-op for A/B overhead measurement.
package obs

import "sync/atomic"

// disabled flips every recording primitive into a no-op. Stored
// inverted so the zero value means "enabled".
var disabled atomic.Bool

// SetEnabled toggles all obs recording globally (on by default).
// Reads (snapshots, exposition) keep working either way; only new
// observations are dropped while disabled. Exists for overhead A/B
// measurement — serving code never turns it off.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether recording is active.
func Enabled() bool { return !disabled.Load() }
