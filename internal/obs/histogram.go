package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free log-linear latency histogram in the style
// of HdrHistogram: values (nanoseconds) land in buckets whose width
// doubles every octave, with 2^subBits linear sub-buckets per octave,
// bounding the relative quantile error at 1/2^subBits (12.5%). Every
// record is a few atomic adds — no locks, no allocation — so hot
// paths (per-request, per-flush, per-top-k-phase) record
// unconditionally.
type Histogram struct {
	name   string // metric name, e.g. "mmf_http_request_seconds"
	labels string // canonical label list, e.g. `endpoint="search"`

	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	buckets [numBuckets]atomic.Int64
}

const (
	subBits  = 3
	subCount = 1 << subBits // linear sub-buckets per octave

	// 60 octaves on top of the exact 0..7ns buckets cover every
	// int64 nanosecond duration; the last bucket absorbs overflow.
	numOctaves = 60
	numBuckets = subCount + numOctaves*subCount
)

// bucketIndex maps a nanosecond value to its bucket. Values below
// subCount get exact buckets; above, the octave is the position of
// the leading bit and the sub-bucket the next subBits bits.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b <= subBits {
		return int(v)
	}
	oct := b - subBits - 1
	sub := int((uint64(v) >> uint(oct)) & (subCount - 1))
	i := subCount + oct*subCount + sub
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// bucketUpper is the largest value bucket i holds (its inclusive
// upper bound); quantiles report this bound, clamped to the true max.
func bucketUpper(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	oct := (i - subCount) / subCount
	sub := (i - subCount) % subCount
	base := int64(1) << uint(oct+subBits)
	width := int64(1) << uint(oct)
	return base + int64(sub+1)*width - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNanos(int64(d)) }

// ObserveNanos records one duration given in nanoseconds.
func (h *Histogram) ObserveNanos(ns int64) {
	if h == nil || disabled.Load() {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if old >= ns || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
}

// Since records the time elapsed since t0 — the usual call shape is
// defer h.Since(time.Now()) or an explicit pair around a stage.
func (h *Histogram) Since(t0 time.Time) { h.Observe(time.Since(t0)) }

// HistSnapshot is a point-in-time copy of a histogram. Concurrent
// records during the copy can skew individual buckets by an
// observation — fine for metrics, documented for tests.
type HistSnapshot struct {
	Count  int64
	SumNS  int64
	MaxNS  int64
	counts [numBuckets]int64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.SumNS = h.sum.Load()
	s.MaxNS = h.max.Load()
	for i := range h.buckets {
		s.counts[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile returns the value at quantile q (0 < q <= 1) as a
// duration: the upper bound of the bucket holding the q-th
// observation, clamped to the observed maximum. Zero observations
// yield zero.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	target := int64(q*float64(s.Count) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	var cum int64
	for i := range s.counts {
		cum += s.counts[i]
		if cum >= target {
			v := bucketUpper(i)
			if v > s.MaxNS {
				v = s.MaxNS
			}
			return time.Duration(v)
		}
	}
	return time.Duration(s.MaxNS)
}

// CumulativeAtMost counts the observations that landed in buckets
// whose entire range is at or below bound (in nanoseconds) — the
// cumulative count backing a Prometheus `le` bucket. The bucket
// straddling the bound is excluded, so an observation may surface one
// ladder step above its true value; the ladder stays monotone and
// sums to Count at +Inf.
func (s HistSnapshot) CumulativeAtMost(boundNS int64) int64 {
	var cum int64
	for i := range s.counts {
		if bucketUpper(i) > boundNS {
			break
		}
		cum += s.counts[i]
	}
	return cum
}

// Summary is the fixed quantile digest serving layers report
// (/stats, BENCH_*.json): count, p50/p90/p99 and max, in
// milliseconds.
type Summary struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// Summary digests the snapshot.
func (s HistSnapshot) Summary() Summary {
	return Summary{
		Count: s.Count,
		P50MS: float64(s.Quantile(0.50)) / 1e6,
		P90MS: float64(s.Quantile(0.90)) / 1e6,
		P99MS: float64(s.Quantile(0.99)) / 1e6,
		MaxMS: float64(s.MaxNS) / 1e6,
	}
}
