package obs

import (
	"sync/atomic"
	"time"
)

// Rate measures events per second over a sliding window of
// per-second buckets, entirely with atomics. Each bucket packs the
// unix second it was last used into the high bits of one word and
// the event count into the low bits, so the "new second resets the
// bucket" transition is a single CAS — no lock, no lost counts.
type Rate struct {
	buckets [rateBuckets]atomic.Uint64
}

const (
	rateBuckets = 64
	rateSpan    = 10 // seconds averaged by PerSecond

	// Bucket word layout: [ second : 40 bits | count : 24 bits ].
	// 24 bits cap a bucket at ~16.7M events/second — beyond the
	// serving layer's reach — and 40 bits of unix seconds run out
	// in the year 36812.
	rateCountBits = 24
	rateCountMask = (1 << rateCountBits) - 1
)

// NewRate returns a rate window.
func NewRate() *Rate { return &Rate{} }

// Record counts one event in the current second's bucket.
func (r *Rate) Record() {
	if r == nil || disabled.Load() {
		return
	}
	now := uint64(time.Now().Unix())
	b := &r.buckets[now%rateBuckets]
	for {
		old := b.Load()
		var next uint64
		if old>>rateCountBits == now {
			if old&rateCountMask == rateCountMask {
				return // saturated; drop rather than corrupt the second
			}
			next = old + 1
		} else {
			next = now<<rateCountBits | 1
		}
		if b.CompareAndSwap(old, next) {
			return
		}
	}
}

// PerSecond returns events/second averaged over the last rateSpan
// full seconds (the current, partially filled second is excluded).
func (r *Rate) PerSecond() float64 {
	if r == nil {
		return 0
	}
	now := uint64(time.Now().Unix())
	var sum uint64
	for sec := now - rateSpan; sec < now; sec++ {
		v := r.buckets[sec%rateBuckets].Load()
		if v>>rateCountBits == sec {
			sum += v & rateCountMask
		}
	}
	return float64(sum) / rateSpan
}
