package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Prometheus text exposition (format version 0.0.4): histograms as
// cumulative `le` ladders in seconds, counters and gauges as scalar
// samples. The internal log-linear buckets are folded onto a fixed
// exposition ladder so a scrape stays a few KB regardless of how
// many nanosecond-resolution buckets are populated; an observation
// can surface at most one ladder step above its true value (see
// HistSnapshot.CumulativeAtMost).

// promLadder is the `le` ladder in seconds.
var promLadder = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// WritePrometheus renders every metric of the registry in the
// Prometheus text format. Series are sorted so output is stable for
// golden tests and diff-friendly scrapes.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	counts := make([]*Counter, 0, len(r.counts))
	for _, c := range r.counts {
		counts = append(counts, c)
	}
	gauges := make([]*gaugeFn, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	r.mu.RUnlock()

	sort.Slice(hists, func(i, j int) bool {
		if hists[i].name != hists[j].name {
			return hists[i].name < hists[j].name
		}
		return hists[i].labels < hists[j].labels
	})
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].name != counts[j].name {
			return counts[i].name < counts[j].name
		}
		return counts[i].labels < counts[j].labels
	})
	sort.Slice(gauges, func(i, j int) bool {
		if gauges[i].name != gauges[j].name {
			return gauges[i].name < gauges[j].name
		}
		return gauges[i].labels < gauges[j].labels
	})

	lastType := ""
	for _, h := range hists {
		if h.name != lastType {
			fmt.Fprintf(w, "# TYPE %s histogram\n", h.name)
			lastType = h.name
		}
		s := h.Snapshot()
		for _, le := range promLadder {
			fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n",
				h.name, labelPrefix(h.labels), formatLE(le),
				s.CumulativeAtMost(int64(le*1e9)))
		}
		fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", h.name, labelPrefix(h.labels), s.Count)
		fmt.Fprintf(w, "%s_sum%s %s\n", h.name, labelSuffix(h.labels), formatFloat(float64(s.SumNS)/1e9))
		fmt.Fprintf(w, "%s_count%s %d\n", h.name, labelSuffix(h.labels), s.Count)
	}
	lastType = ""
	for _, c := range counts {
		if c.name != lastType {
			fmt.Fprintf(w, "# TYPE %s counter\n", c.name)
			lastType = c.name
		}
		fmt.Fprintf(w, "%s%s %d\n", c.name, labelSuffix(c.labels), c.Value())
	}
	lastType = ""
	for _, g := range gauges {
		if g.name != lastType {
			fmt.Fprintf(w, "# TYPE %s gauge\n", g.name)
			lastType = g.name
		}
		fmt.Fprintf(w, "%s%s %s\n", g.name, labelSuffix(g.labels), formatFloat(g.fn()))
	}
}

// labelPrefix renders labels for joining with further labels
// (`k="v",` or empty).
func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// labelSuffix renders a complete label block (`{k="v"}` or empty).
func labelSuffix(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// formatLE renders a ladder bound the way Prometheus clients do
// (shortest float representation).
func formatLE(le float64) string { return strconv.FormatFloat(le, 'g', -1, 64) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
