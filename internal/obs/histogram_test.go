package obs

import (
	"sync"
	"testing"
	"time"
)

// TestBucketMonotone checks that the bucket mapping is total and
// monotone: every value lands in a bucket whose upper bound is at
// least the value, and bucket upper bounds strictly increase.
func TestBucketMonotone(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < numBuckets; i++ {
		u := bucketUpper(i)
		if u <= prev {
			t.Fatalf("bucketUpper(%d) = %d, not above predecessor %d", i, u, prev)
		}
		prev = u
	}
	for _, v := range []int64{0, 1, 7, 8, 9, 15, 16, 17, 100, 999,
		1e3, 1e6, 1e9, int64(time.Hour), 1 << 62} {
		i := bucketIndex(v)
		if u := bucketUpper(i); u < v && i != numBuckets-1 {
			t.Fatalf("value %d landed in bucket %d with upper %d", v, i, u)
		}
		// Relative error bound of the log-linear layout: the bucket
		// upper bound overstates the value by at most 1/subCount.
		if u := bucketUpper(i); v >= subCount && i != numBuckets-1 {
			if float64(u-v) > float64(v)/subCount {
				t.Fatalf("value %d bucket upper %d overshoots by more than 1/%d", v, u, subCount)
			}
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.ObserveNanos(int64(i) * 1000) // 1µs .. 1ms uniform
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.5, 500 * time.Microsecond}, {0.9, 900 * time.Microsecond}, {0.99, 990 * time.Microsecond}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		// The log-linear buckets bound relative error at 1/subCount.
		lo := c.want - c.want/subCount
		hi := c.want + c.want/subCount
		if got < lo || got > hi {
			t.Errorf("q%.2f = %v, want within [%v, %v]", c.q, got, lo, hi)
		}
	}
	if got := time.Duration(s.MaxNS); got != time.Millisecond {
		t.Errorf("max = %v, want 1ms", got)
	}
	if sum := s.Summary(); sum.Count != 1000 || sum.MaxMS != 1.0 {
		t.Errorf("summary = %+v", sum)
	}
}

// TestHistogramConcurrentRecordSnapshot hammers one histogram from
// parallel recorders while snapshots are taken concurrently; run
// under -race this is the histogram-concurrency gate, and the final
// snapshot must account for every observation exactly.
func TestHistogramConcurrentRecordSnapshot(t *testing.T) {
	var h Histogram
	const workers = 8
	const perWorker = 5000
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var cum int64
			for _, c := range s.counts {
				cum += c
			}
			// A snapshot is not atomic across fields, but bucket sums
			// can never exceed the count observed afterwards.
			if cum > h.count.Load() {
				t.Error("bucket sum exceeds count")
				return
			}
			s.Quantile(0.99)
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.ObserveNanos(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	var cum int64
	for _, c := range s.counts {
		cum += c
	}
	if cum != s.Count {
		t.Fatalf("bucket sum %d != count %d", cum, s.Count)
	}
}

func TestHistogramDisabled(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	var h Histogram
	h.Observe(time.Second)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("disabled histogram recorded %d observations", s.Count)
	}
}

func TestRateWindow(t *testing.T) {
	r := NewRate()
	for i := 0; i < 50; i++ {
		r.Record()
	}
	// The current second is excluded from the average, so PerSecond
	// reports 0 until the second rolls over; only bounds are checked.
	if got := r.PerSecond(); got < 0 || got > 50 {
		t.Fatalf("rate = %v out of bounds", got)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record()
			}
		}()
	}
	wg.Wait()
}
