package obs

import (
	"strings"
	"testing"
	"time"
)

// The minimal exposition parser these tests validate with lives in
// promparse.go (non-test file, so the serving layer's endpoint tests
// can import it too).

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "endpoint", "search")
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Millisecond)
	}
	h2 := r.Histogram("test_latency_seconds", "endpoint", "query")
	h2.Observe(3 * time.Second)
	r.Counter("test_requests_total", "kind", "search").Add(42)
	r.Gauge("test_inflight", func() float64 { return 7 })

	var b strings.Builder
	r.WritePrometheus(&b)
	text := b.String()

	samples, types, err := ParsePrometheusText(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if types["test_latency_seconds"] != "histogram" ||
		types["test_requests_total"] != "counter" ||
		types["test_inflight"] != "gauge" {
		t.Fatalf("types = %v", types)
	}
	if err := ValidatePromHistograms(samples, types); err != nil {
		t.Fatalf("histogram invariants: %v\n%s", err, text)
	}
	var sawCounter, sawGauge, sawP100ms bool
	for _, s := range samples {
		switch s.Name {
		case "test_requests_total":
			sawCounter = true
			if s.Value != 42 || s.Labels["kind"] != "search" {
				t.Errorf("counter sample %+v", s)
			}
		case "test_inflight":
			sawGauge = true
			if s.Value != 7 {
				t.Errorf("gauge sample %+v", s)
			}
		case "test_latency_seconds_bucket":
			// 100 observations of 1..100ms: the le=0.1 bucket must hold
			// nearly all of them — folding the log-linear buckets onto
			// the ladder can defer observations within 1/subCount
			// (12.5%) of the bound to the next step, never more.
			if s.Labels["endpoint"] == "search" && s.Labels["le"] == "0.1" {
				sawP100ms = true
				if s.Value < 87 {
					t.Errorf("le=0.1 cumulative = %v, want >= 87", s.Value)
				}
			}
		}
	}
	if !sawCounter || !sawGauge || !sawP100ms {
		t.Fatalf("missing expected samples (counter=%v gauge=%v bucket=%v)\n%s",
			sawCounter, sawGauge, sawP100ms, text)
	}
}

func TestRegistryGetOrCreateAndUnregister(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("m", "k", "v")
	b := r.Histogram("m", "k", "v")
	if a != b {
		t.Fatal("same series returned distinct histograms")
	}
	if c := r.Histogram("m", "k", "w"); c == a {
		t.Fatal("distinct label sets shared a histogram")
	}
	a.Observe(time.Millisecond)
	if s, ok := r.HistogramSnapshot("m", "k", "v"); !ok || s.Count != 1 {
		t.Fatalf("snapshot lookup failed: ok=%v", ok)
	}
	r.Unregister("m")
	if _, ok := r.HistogramSnapshot("m", "k", "v"); ok {
		t.Fatal("unregister left the series behind")
	}
	if got := len(r.Summaries()); got != 0 {
		t.Fatalf("summaries after unregister: %d", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "q", "a\"b\\c\nd").Add(1)
	var b strings.Builder
	r.WritePrometheus(&b)
	if _, _, err := ParsePrometheusText(b.String()); err != nil {
		t.Fatalf("escaped label broke the format: %v\n%s", err, b.String())
	}
}
