package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotone event counter.
type Counter struct {
	name   string
	labels string
	v      atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c == nil || disabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// gaugeFn is a registered read-on-scrape scalar.
type gaugeFn struct {
	name   string
	labels string
	fn     func() float64
}

// Registry holds named metrics for exposition. Metrics are created on
// first use and live for the process lifetime (the expvar model);
// a histogram or counter handle, once obtained, records without any
// registry involvement.
type Registry struct {
	mu     sync.RWMutex
	hists  map[string]*Histogram
	counts map[string]*Counter
	gauges map[string]*gaugeFn
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:  make(map[string]*Histogram),
		counts: make(map[string]*Counter),
		gauges: make(map[string]*gaugeFn),
	}
}

// Default is the process-wide registry every layer records into (the
// same role prometheus' default registerer or expvar's global map
// play); the serving layer exposes it at /metrics.
var Default = NewRegistry()

// canonLabels renders k,v pairs canonically: sorted by key,
// `k1="v1",k2="v2"`. Panics on an odd pair count (a programming
// error, caught by any test that touches the call site).
func canonLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: labels must be key,value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", p.k, escapeLabel(p.v))
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format
// (backslash, double quote, newline).
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func metricKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// Histogram returns the histogram registered under name and the
// given label pairs, creating it on first use.
func (r *Registry) Histogram(name string, labelPairs ...string) *Histogram {
	labels := canonLabels(labelPairs)
	key := metricKey(name, labels)
	r.mu.RLock()
	h := r.hists[key]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[key]; h == nil {
		h = &Histogram{name: name, labels: labels}
		r.hists[key] = h
	}
	return h
}

// HistogramSnapshot returns the snapshot of a registered histogram;
// ok is false when no such histogram exists yet.
func (r *Registry) HistogramSnapshot(name string, labelPairs ...string) (HistSnapshot, bool) {
	key := metricKey(name, canonLabels(labelPairs))
	r.mu.RLock()
	h := r.hists[key]
	r.mu.RUnlock()
	if h == nil {
		return HistSnapshot{}, false
	}
	return h.Snapshot(), true
}

// Counter returns the counter registered under name and the given
// label pairs, creating it on first use.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	labels := canonLabels(labelPairs)
	key := metricKey(name, labels)
	r.mu.RLock()
	c := r.counts[key]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counts[key]; c == nil {
		c = &Counter{name: name, labels: labels}
		r.counts[key] = c
	}
	return c
}

// Gauge registers a read-on-scrape scalar under name and the given
// label pairs. Re-registering the same series replaces the function
// (tests rebuild servers; the freshest closure wins).
func (r *Registry) Gauge(name string, fn func() float64, labelPairs ...string) {
	labels := canonLabels(labelPairs)
	key := metricKey(name, labels)
	r.mu.Lock()
	r.gauges[key] = &gaugeFn{name: name, labels: labels, fn: fn}
	r.mu.Unlock()
}

// Unregister drops every series of the metric name (all label sets).
// Collection teardown uses it so dropped tenants stop appearing in
// /metrics.
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for key, h := range r.hists {
		if h.name == name {
			delete(r.hists, key)
		}
	}
	for key, c := range r.counts {
		if c.name == name {
			delete(r.counts, key)
		}
	}
	for key, g := range r.gauges {
		if g.name == name {
			delete(r.gauges, key)
		}
	}
}

// Summaries digests every histogram series of the registry into the
// fixed quantile summary, keyed by the full series name
// (`name{labels}`) — the /stats latency section and BENCH_*.json
// both consume this.
func (r *Registry) Summaries() map[string]Summary {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]Summary, len(r.hists))
	for key, h := range r.hists {
		out[key] = h.Snapshot().Summary()
	}
	return out
}
