package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceRecord is a finished trace as kept by the slow log and
// rendered by /debug/slowlog.
type TraceRecord struct {
	Op         string    `json:"op"`
	Detail     string    `json:"detail"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Spans      []Span    `json:"spans"`
	Attrs      []Attr    `json:"attrs,omitempty"`

	durNS int64
	seq   uint64 // admission order, for deterministic tie-breaks
}

// SlowLog is a ring buffer of the most recent traces that crossed a
// duration threshold. The ring bounds memory under a flood of slow
// requests; Slowest re-ranks what the ring retained, so the log
// answers "what were the slowest recent traces" rather than "the
// slowest ever".
type SlowLog struct {
	thresholdNS atomic.Int64
	recorded    atomic.Int64 // traces admitted since process start
	seq         atomic.Uint64

	mu   sync.Mutex
	ring []TraceRecord
	next int
	n    int // live entries (≤ len(ring))
}

// NewSlowLog returns a slow log keeping the last capacity traces at
// or above threshold. threshold <= 0 disables admission.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	l := &SlowLog{ring: make([]TraceRecord, capacity)}
	l.thresholdNS.Store(int64(threshold))
	return l
}

// SharedSlowLog is the process-wide slow log: request traces from
// the serving layer and flush traces from the coupling's ingest
// pipeline land here, and /debug/slowlog serves it. Disabled
// (threshold 0) until a serving layer configures it.
var SharedSlowLog = NewSlowLog(128, 0)

// Configure resizes the ring and sets the admission threshold
// (existing entries are dropped on resize).
func (l *SlowLog) Configure(capacity int, threshold time.Duration) {
	if capacity < 1 {
		capacity = 1
	}
	l.mu.Lock()
	if capacity != len(l.ring) {
		l.ring = make([]TraceRecord, capacity)
		l.next, l.n = 0, 0
	}
	l.mu.Unlock()
	l.thresholdNS.Store(int64(threshold))
}

// SetThreshold adjusts the admission threshold; <= 0 disables.
func (l *SlowLog) SetThreshold(d time.Duration) { l.thresholdNS.Store(int64(d)) }

// Threshold returns the current admission threshold.
func (l *SlowLog) Threshold() time.Duration { return time.Duration(l.thresholdNS.Load()) }

// Capacity returns the ring size.
func (l *SlowLog) Capacity() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

// Len returns the number of retained traces.
func (l *SlowLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Recorded returns how many traces crossed the threshold since
// process start (retained or since overwritten).
func (l *SlowLog) Recorded() int64 { return l.recorded.Load() }

// offer admits a finished trace if it crossed the threshold.
func (l *SlowLog) offer(t *Trace, total time.Duration) {
	if l == nil || t == nil {
		return
	}
	th := l.thresholdNS.Load()
	if th <= 0 || int64(total) < th {
		return
	}
	l.recorded.Add(1)
	t.mu.Lock()
	rec := TraceRecord{
		Op:         t.op,
		Detail:     t.detail,
		Start:      t.start,
		DurationMS: float64(total) / 1e6,
		Spans:      append([]Span(nil), t.spans...),
		Attrs:      append([]Attr(nil), t.attrs...),
		durNS:      int64(total),
		seq:        l.seq.Add(1),
	}
	t.mu.Unlock()
	l.mu.Lock()
	l.ring[l.next] = rec
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.mu.Unlock()
}

// Slowest returns up to n retained traces, slowest first (ties by
// admission order, newest first — the more recent trace is the more
// actionable one).
func (l *SlowLog) Slowest(n int) []TraceRecord {
	l.mu.Lock()
	out := make([]TraceRecord, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.ring[i])
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].durNS != out[j].durNS {
			return out[i].durNS > out[j].durNS
		}
		return out[i].seq > out[j].seq
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
