package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// record builds a finished trace of a known duration and offers it.
func offerTrace(l *SlowLog, op string, d time.Duration) {
	t := &Trace{op: op, detail: op, start: time.Now().Add(-d)}
	t.Span("stage", d/2)
	t.Attr("k", 1)
	l.offer(t, d)
}

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(8, 10*time.Millisecond)
	offerTrace(l, "fast", 5*time.Millisecond)
	offerTrace(l, "slow", 20*time.Millisecond)
	if got := l.Len(); got != 1 {
		t.Fatalf("len = %d, want 1 (threshold must reject the fast trace)", got)
	}
	recs := l.Slowest(10)
	if len(recs) != 1 || recs[0].Op != "slow" {
		t.Fatalf("slowest = %+v", recs)
	}
	if len(recs[0].Spans) != 1 || recs[0].Spans[0].Name != "stage" {
		t.Fatalf("spans not preserved: %+v", recs[0].Spans)
	}
	l.SetThreshold(0)
	offerTrace(l, "slow2", 20*time.Millisecond)
	if got := l.Len(); got != 1 {
		t.Fatalf("threshold 0 admitted a trace (len %d)", got)
	}
}

// TestSlowLogRingOverflow overfills the ring and checks that exactly
// capacity entries survive — the most recent ones — and that Slowest
// ranks them by duration.
func TestSlowLogRingOverflow(t *testing.T) {
	const capacity = 4
	l := NewSlowLog(capacity, time.Millisecond)
	for i := 1; i <= 10; i++ {
		offerTrace(l, fmt.Sprintf("t%d", i), time.Duration(i)*10*time.Millisecond)
	}
	if got := l.Len(); got != capacity {
		t.Fatalf("len = %d, want %d", got, capacity)
	}
	if got := l.Recorded(); got != 10 {
		t.Fatalf("recorded = %d, want 10", got)
	}
	recs := l.Slowest(0)
	if len(recs) != capacity {
		t.Fatalf("slowest returned %d", len(recs))
	}
	// The ring keeps the last 4 offers (t7..t10); sorted by duration
	// descending that is t10, t9, t8, t7.
	want := []string{"t10", "t9", "t8", "t7"}
	for i, w := range want {
		if recs[i].Op != w {
			t.Errorf("slowest[%d] = %s, want %s", i, recs[i].Op, w)
		}
	}
	if top := l.Slowest(2); len(top) != 2 || top[0].Op != "t10" {
		t.Errorf("Slowest(2) = %+v", top)
	}
}

func TestSlowLogConfigureResize(t *testing.T) {
	l := NewSlowLog(2, time.Millisecond)
	offerTrace(l, "a", 5*time.Millisecond)
	l.Configure(8, 2*time.Millisecond)
	if l.Len() != 0 || l.Capacity() != 8 {
		t.Fatalf("resize kept entries: len=%d cap=%d", l.Len(), l.Capacity())
	}
	if l.Threshold() != 2*time.Millisecond {
		t.Fatalf("threshold = %v", l.Threshold())
	}
}

// TestSlowLogConcurrent races offers against readers (run with
// -race).
func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(16, time.Nanosecond)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				offerTrace(l, fmt.Sprintf("w%d", w), time.Duration(i+1)*time.Microsecond)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			l.Slowest(8)
			l.Len()
		}
	}()
	wg.Wait()
	<-done
	if got := l.Recorded(); got != 2000 {
		t.Fatalf("recorded = %d, want 2000", got)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	end := tr.StartSpan("x")
	end()
	tr.Span("y", time.Millisecond)
	tr.Attr("k", "v")
	if d := tr.Finish(SharedSlowLog); d != 0 {
		t.Fatalf("nil trace finished with %v", d)
	}
	SetEnabled(false)
	defer SetEnabled(true)
	if tr := StartTrace("op", "detail"); tr != nil {
		t.Fatal("StartTrace allocated while disabled")
	}
}
