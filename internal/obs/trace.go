package obs

import (
	"sync"
	"time"
)

// Span is one recorded stage of a trace: where in the request the
// stage started (offset from the trace start) and how long it took.
type Span struct {
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
}

// Attr is one key/value annotation on a trace (shards visited,
// candidates pruned, cache hit/miss, ...).
type Attr struct {
	Key string `json:"key"`
	Val any    `json:"val"`
}

// Trace is a lightweight per-request trace context: an operation, a
// detail string (query text, collection), stage spans and
// annotations. Layers receive a *Trace and record into it; every
// method is nil-receiver safe, so call sites pass traces
// unconditionally and untraced paths cost one nil check.
type Trace struct {
	op     string
	detail string
	start  time.Time

	mu    sync.Mutex
	spans []Span
	attrs []Attr
}

// StartTrace begins a trace; it returns nil (a valid no-op trace)
// while recording is disabled.
func StartTrace(op, detail string) *Trace {
	if disabled.Load() {
		return nil
	}
	return &Trace{op: op, detail: detail, start: time.Now()}
}

// StartSpan opens a stage span; the returned func closes it.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() {
		t.addSpan(name, t0.Sub(t.start), time.Since(t0))
	}
}

// Span records a stage that was measured externally: it ran for d
// and ended now.
func (t *Trace) Span(name string, d time.Duration) { t.SpanEnded(name, d, 0) }

// SpanEnded records a stage that ran for d and ended endedAgo before
// now — the shape for back-to-back stages reported after the fact
// (the top-k scheduler reports seed/finish/merge once the evaluation
// returns).
func (t *Trace) SpanEnded(name string, d, endedAgo time.Duration) {
	if t == nil {
		return
	}
	start := time.Since(t.start) - endedAgo - d
	if start < 0 {
		start = 0
	}
	t.addSpan(name, start, d)
}

func (t *Trace) addSpan(name string, start, d time.Duration) {
	t.mu.Lock()
	t.spans = append(t.spans, Span{
		Name:    name,
		StartMS: float64(start) / 1e6,
		DurMS:   float64(d) / 1e6,
	})
	t.mu.Unlock()
}

// SetDetail replaces the trace's detail string. Admission layers
// start the trace before the request body is parsed; the handler
// fills in the query text once it has it.
func (t *Trace) SetDetail(detail string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.detail = detail
	t.mu.Unlock()
}

// Attr annotates the trace.
func (t *Trace) Attr(key string, val any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.attrs = append(t.attrs, Attr{Key: key, Val: val})
	t.mu.Unlock()
}

// Int64Attr returns the most recent annotation recorded under key,
// coerced to int64. Layers that measure work (the top-k engine
// records candidates_scored) annotate the request trace; layers that
// act on the measurement (the query cache's cost model) read it back
// through this accessor instead of growing cross-package result
// structs. The second return is false when the key was never
// recorded or holds a non-integer value.
func (t *Trace) Int64Attr(key string) (int64, bool) {
	if t == nil {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.attrs) - 1; i >= 0; i-- {
		if t.attrs[i].Key != key {
			continue
		}
		switch v := t.attrs[i].Val.(type) {
		case int:
			return int64(v), true
		case int64:
			return v, true
		case uint64:
			return int64(v), true
		}
		return 0, false
	}
	return 0, false
}

// Finish closes the trace, offers it to log (usually SharedSlowLog)
// when its total duration reaches the log's threshold, and returns
// the total.
func (t *Trace) Finish(log *SlowLog) time.Duration {
	if t == nil {
		return 0
	}
	total := time.Since(t.start)
	log.offer(t, total)
	return total
}
