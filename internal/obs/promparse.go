package obs

import (
	"bufio"
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Minimal Prometheus text-format (0.0.4) parser: enough to validate
// /metrics output — `# TYPE name kind` declarations and
// `name{labels} value` samples, with the histogram format invariants
// checked by ValidatePromHistograms. It exists for the test suites of
// this package and the serving layer (a scrape endpoint that only a
// real Prometheus ever parses is an endpoint whose format rots);
// nothing in the serving path uses it.

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

var promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
var promLabelRe = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)

// ParsePrometheusText parses exposition text, returning the samples
// and the TYPE of every declared metric. Malformed lines are errors —
// that is the point of a validation parser.
func ParsePrometheusText(text string) (samples []PromSample, types map[string]string, err error) {
	types = make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, nil, fmt.Errorf("malformed TYPE line %q", line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, nil, fmt.Errorf("unknown metric type in %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			return nil, nil, fmt.Errorf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(m[4], 64)
		if err != nil && m[4] != "+Inf" && m[4] != "-Inf" && m[4] != "NaN" {
			return nil, nil, fmt.Errorf("bad value in %q: %v", line, err)
		}
		labels := make(map[string]string)
		if m[3] != "" {
			rest := m[3]
			for _, lm := range promLabelRe.FindAllStringSubmatch(rest, -1) {
				labels[lm[1]] = lm[2]
			}
		}
		samples = append(samples, PromSample{Name: m[1], Labels: labels, Value: v})
	}
	return samples, types, sc.Err()
}

// ValidatePromHistograms checks every declared histogram for the
// format invariants: a cumulative non-decreasing `le` ladder ending
// at +Inf, and matching _count and _sum series.
func ValidatePromHistograms(samples []PromSample, types map[string]string) error {
	type series struct {
		lastLE    float64
		lastCount float64
		infCount  float64
		hasInf    bool
		count     float64
		hasCount  bool
		hasSum    bool
	}
	bySeries := make(map[string]*series)
	keyOf := func(name string, labels map[string]string) string {
		parts := make([]string, 0, len(labels))
		for k, v := range labels {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+v)
		}
		// Sort-free canonical key: few labels, join after insertion
		// sort.
		for i := 1; i < len(parts); i++ {
			for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
				parts[j], parts[j-1] = parts[j-1], parts[j]
			}
		}
		return name + "{" + strings.Join(parts, ",") + "}"
	}
	get := func(k string) *series {
		s := bySeries[k]
		if s == nil {
			s = &series{lastLE: -1}
			bySeries[k] = s
		}
		return s
	}
	for _, sm := range samples {
		for base, typ := range types {
			if typ != "histogram" {
				continue
			}
			switch sm.Name {
			case base + "_bucket":
				s := get(keyOf(base, sm.Labels))
				le := sm.Labels["le"]
				if le == "" {
					return fmt.Errorf("%s bucket without le label", base)
				}
				if le == "+Inf" {
					s.hasInf = true
					s.infCount = sm.Value
					continue
				}
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("%s bad le %q", base, le)
				}
				if bound <= s.lastLE {
					return fmt.Errorf("%s le ladder not increasing at %v", base, bound)
				}
				if sm.Value < s.lastCount {
					return fmt.Errorf("%s cumulative count decreased at le=%v", base, bound)
				}
				s.lastLE, s.lastCount = bound, sm.Value
			case base + "_count":
				s := get(keyOf(base, sm.Labels))
				s.hasCount = true
				s.count = sm.Value
			case base + "_sum":
				get(keyOf(base, sm.Labels)).hasSum = true
			}
		}
	}
	for key, s := range bySeries {
		if !s.hasInf {
			return fmt.Errorf("%s missing +Inf bucket", key)
		}
		if !s.hasCount || !s.hasSum {
			return fmt.Errorf("%s missing _count or _sum", key)
		}
		if s.infCount != s.count {
			return fmt.Errorf("%s +Inf bucket %v != count %v", key, s.infCount, s.count)
		}
		if s.lastCount > s.infCount {
			return fmt.Errorf("%s finite bucket exceeds +Inf", key)
		}
	}
	return nil
}
