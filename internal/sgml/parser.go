package sgml

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseOptions controls document parsing.
type ParseOptions struct {
	// Strict enforces full validity: content models must be
	// completable wherever an end tag appears or is implied,
	// attributes must be declared and well-typed, and required
	// attributes must be present. Non-strict parsing still builds
	// the tree and applies attribute defaults but tolerates
	// incomplete content and undeclared attributes.
	Strict bool
}

// openElem is one entry of the parser's element stack.
type openElem struct {
	node    *Node
	decl    *ElementDecl
	matcher *Matcher
}

// ParseDocument parses SGML document text against the DTD, inferring
// omitted end tags from content models (OMITTAG minimization). The
// paper's MMF example depends on this: paragraphs are written as
// consecutive <PARA> start tags whose ends are implied.
func ParseDocument(d *DTD, src string, opts ParseOptions) (*Node, error) {
	p := &docParser{d: d, lx: newLexer(src), opts: opts}
	return p.parse()
}

type docParser struct {
	d     *DTD
	lx    *lexer
	opts  ParseOptions
	stack []*openElem
	root  *Node
}

func (p *docParser) top() *openElem {
	if len(p.stack) == 0 {
		return nil
	}
	return p.stack[len(p.stack)-1]
}

func (p *docParser) parse() (*Node, error) {
	lx := p.lx
	for !lx.eof() {
		c, _ := lx.peekByte()
		if c != '<' {
			start := lx.pos
			i := strings.IndexByte(lx.src[lx.pos:], '<')
			if i < 0 {
				lx.pos = len(lx.src)
			} else {
				lx.pos += i
			}
			if err := p.text(lx.src[start:lx.pos]); err != nil {
				return nil, err
			}
			continue
		}
		switch {
		case strings.HasPrefix(lx.src[lx.pos:], "<!--"):
			end := strings.Index(lx.src[lx.pos+4:], "-->")
			if end < 0 {
				return nil, lx.errf("unterminated comment")
			}
			lx.pos += 4 + end + 3
		case strings.HasPrefix(lx.src[lx.pos:], "<!"):
			// DOCTYPE or other declaration embedded in the instance;
			// skipped (the DTD is supplied separately).
			if !lx.skipTo('>') {
				return nil, lx.errf("unterminated declaration")
			}
		case strings.HasPrefix(lx.src[lx.pos:], "</"):
			lx.advance(2)
			name := lx.readName()
			if name == "" {
				return nil, lx.errf("malformed end tag")
			}
			lx.skipSpaceAndComments()
			if !lx.consume(">") {
				return nil, lx.errf("unterminated end tag </%s", name)
			}
			if err := p.endTag(foldName(name)); err != nil {
				return nil, err
			}
		default:
			lx.advance(1)
			name := lx.readName()
			if name == "" {
				return nil, lx.errf("malformed start tag")
			}
			attrs, selfClose, err := p.attributes()
			if err != nil {
				return nil, err
			}
			if err := p.startTag(foldName(name), attrs); err != nil {
				return nil, err
			}
			if selfClose {
				if err := p.endTag(foldName(name)); err != nil {
					return nil, err
				}
			}
		}
	}
	// Imply end tags for everything still open.
	for len(p.stack) > 0 {
		if err := p.implyEnd("end of input"); err != nil {
			return nil, err
		}
	}
	if p.root == nil {
		return nil, fmt.Errorf("sgml: document contains no elements")
	}
	return p.root, nil
}

// attributes parses the attribute list of a start tag up to '>'.
func (p *docParser) attributes() (map[string]string, bool, error) {
	lx := p.lx
	attrs := make(map[string]string)
	for {
		lx.skipSpaceAndComments()
		if lx.consume("/>") {
			return attrs, true, nil
		}
		if lx.consume(">") {
			return attrs, false, nil
		}
		name := lx.readName()
		if name == "" {
			return nil, false, lx.errf("malformed attribute in start tag")
		}
		lx.skipSpaceAndComments()
		if !lx.consume("=") {
			// Minimized boolean attribute: NAME alone.
			attrs[foldName(name)] = name
			continue
		}
		lx.skipSpaceAndComments()
		if c, ok := lx.peekByte(); ok && (c == '"' || c == '\'') {
			lit, err := lx.readLiteral()
			if err != nil {
				return nil, false, err
			}
			attrs[foldName(name)] = decodeEntities(lit)
			continue
		}
		// Unquoted value: a name token.
		val := lx.readName()
		if val == "" {
			return nil, false, lx.errf("missing value for attribute %s", name)
		}
		attrs[foldName(name)] = val
	}
}

// startTag places an element, implying end tags as needed.
func (p *docParser) startTag(name string, attrs map[string]string) error {
	decl, ok := p.d.Elements[name]
	if !ok {
		return p.lx.errf("undeclared element %s", name)
	}
	if err := p.checkAttrs(decl, attrs); err != nil {
		return err
	}
	node := &Node{Type: name, Attrs: attrs}
	if len(p.stack) == 0 {
		if p.root != nil {
			return p.lx.errf("multiple root elements (%s after %s)", name, p.root.Type)
		}
		p.root = node
		p.stack = append(p.stack, &openElem{node: node, decl: decl, matcher: decl.NewMatcher()})
		return nil
	}
	for {
		top := p.top()
		if top.matcher.Accept(name) {
			top.node.AddChild(node)
			p.stack = append(p.stack, &openElem{node: node, decl: decl, matcher: decl.NewMatcher()})
			return nil
		}
		if p.canImplyEnd(top) {
			p.pop()
			if len(p.stack) == 0 {
				break
			}
			continue
		}
		break
	}
	if p.opts.Strict {
		return p.lx.errf("element %s is not allowed here", name)
	}
	// Lenient: force-attach to the innermost still-open element (or
	// as a sibling under the root's parent chain is exhausted).
	if len(p.stack) == 0 {
		p.stack = append(p.stack, &openElem{node: p.root, decl: p.d.Elements[p.root.Type], matcher: p.d.Elements[p.root.Type].NewMatcher()})
	}
	top := p.top()
	top.node.AddChild(node)
	p.stack = append(p.stack, &openElem{node: node, decl: decl, matcher: decl.NewMatcher()})
	return nil
}

// canImplyEnd reports whether the top element's end tag may be
// implied here.
func (p *docParser) canImplyEnd(e *openElem) bool {
	if !e.decl.OmitEnd {
		return false
	}
	if p.opts.Strict {
		return e.matcher.AtEnd()
	}
	return true
}

func (p *docParser) pop() { p.stack = p.stack[:len(p.stack)-1] }

// implyEnd closes the top element, enforcing completeness rules.
func (p *docParser) implyEnd(where string) error {
	top := p.top()
	if p.opts.Strict {
		if !top.decl.OmitEnd {
			return p.lx.errf("end tag </%s> omitted but not omissible (%s)", top.node.Type, where)
		}
		if !top.matcher.AtEnd() {
			return p.lx.errf("content of %s incomplete (%s)", top.node.Type, where)
		}
	}
	p.pop()
	return nil
}

// endTag handles an explicit end tag, closing implied elements in
// between.
func (p *docParser) endTag(name string) error {
	// Find the matching open element.
	found := -1
	for i := len(p.stack) - 1; i >= 0; i-- {
		if p.stack[i].node.Type == name {
			found = i
			break
		}
	}
	if found < 0 {
		if p.opts.Strict {
			return p.lx.errf("end tag </%s> matches no open element", name)
		}
		return nil // lenient: stray end tag dropped
	}
	for len(p.stack)-1 > found {
		if err := p.implyEnd("before </" + name + ">"); err != nil {
			return err
		}
	}
	top := p.top()
	if p.opts.Strict && !top.matcher.AtEnd() {
		return p.lx.errf("content of %s incomplete at </%s>", top.node.Type, name)
	}
	p.pop()
	return nil
}

// text handles character data, attaching it to the innermost element
// that may contain #PCDATA (implying end tags on the way out).
func (p *docParser) text(raw string) error {
	decoded := decodeEntities(raw)
	wsOnly := strings.TrimSpace(decoded) == ""
	if len(p.stack) == 0 {
		if wsOnly {
			return nil
		}
		return p.lx.errf("character data outside the document element")
	}
	if wsOnly {
		// Separator white space: recorded only inside mixed content,
		// dropped in element content.
		top := p.top()
		if top.matcher.CanAccept(pcdataToken) && len(top.node.Children) > 0 {
			return nil // still dropped: keeps trees canonical
		}
		return nil
	}
	for {
		top := p.top()
		if top.matcher.Accept(pcdataToken) {
			top.node.AddChild(&Node{Type: TextType, Data: decoded})
			return nil
		}
		if p.canImplyEnd(top) && len(p.stack) > 1 {
			p.pop()
			continue
		}
		break
	}
	if p.opts.Strict {
		return p.lx.errf("character data not allowed in %s", p.top().node.Type)
	}
	p.top().node.AddChild(&Node{Type: TextType, Data: decoded})
	return nil
}

// checkAttrs validates attributes against the ATTLIST and applies
// defaults.
func (p *docParser) checkAttrs(decl *ElementDecl, attrs map[string]string) error {
	if p.opts.Strict {
		for name := range attrs {
			if _, ok := decl.Att(name); !ok {
				return p.lx.errf("attribute %s not declared for %s", name, decl.Name)
			}
		}
	}
	for i := range decl.Attlist {
		def := &decl.Attlist[i]
		v, present := attrs[def.Name]
		if !present {
			if def.Required && p.opts.Strict {
				return p.lx.errf("required attribute %s missing on %s", def.Name, decl.Name)
			}
			if def.Default != "" {
				attrs[def.Name] = def.Default
			}
			continue
		}
		switch def.Type {
		case "NUMBER":
			if _, err := strconv.Atoi(strings.TrimSpace(v)); err != nil && p.opts.Strict {
				return p.lx.errf("attribute %s of %s must be a number, got %q", def.Name, decl.Name, v)
			}
		case "ENUM":
			okVal := false
			for _, e := range def.Enum {
				if strings.EqualFold(e, v) {
					okVal = true
					break
				}
			}
			if !okVal && p.opts.Strict {
				return p.lx.errf("attribute %s of %s must be one of %v, got %q", def.Name, decl.Name, def.Enum, v)
			}
		}
	}
	return nil
}

// entities supported in character data and attribute literals.
var entities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'",
}

// decodeEntities resolves &name; and &#NN; references. Unknown
// references are left verbatim (lenient, like period tools).
func decodeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			sb.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i+1:], ';')
		if semi < 0 || semi > 8 {
			sb.WriteByte(c)
			i++
			continue
		}
		ref := s[i+1 : i+1+semi]
		if rep, ok := entities[ref]; ok {
			sb.WriteString(rep)
			i += semi + 2
			continue
		}
		if strings.HasPrefix(ref, "#") {
			if n, err := strconv.Atoi(ref[1:]); err == nil && n > 0 && n < 0x110000 {
				sb.WriteRune(rune(n))
				i += semi + 2
				continue
			}
		}
		sb.WriteByte(c)
		i++
	}
	return sb.String()
}
