package sgml

import (
	"strings"
	"testing"
)

// Deeply nested recursive content models (sections in sections).
func TestRecursiveContentModel(t *testing.T) {
	d := mustDTD(t, `
<!ELEMENT BOOK - - (TITLE, SECTION+)>
<!ELEMENT SECTION - O (TITLE, (PARA | SECTION)*)>
<!ELEMENT (TITLE|PARA) - O (#PCDATA)>
`)
	src := `<BOOK><TITLE>t
<SECTION><TITLE>s1
<PARA>p1
<SECTION><TITLE>s1.1
<PARA>p2
</SECTION>
</SECTION>
<SECTION><TITLE>s2
<PARA>p3
</BOOK>`
	root, err := ParseDocument(d, src, ParseOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	secs := root.ElementsByType("SECTION")
	if len(secs) != 3 {
		t.Fatalf("sections = %d, want 3", len(secs))
	}
	// The nested section is a child of s1, not a sibling.
	inner := secs[1]
	if inner.Ancestor("SECTION") != secs[0] {
		t.Error("nested section not under its parent section")
	}
	if got := root.ElementsByType("PARA")[1].InnerText(); got != "p2" {
		t.Errorf("inner para = %q", got)
	}
}

// Explicit end tags close intermediate omissible elements.
func TestEndTagClosesIntermediates(t *testing.T) {
	d := mustDTD(t, `
<!ELEMENT DOC - - (SEC+)>
<!ELEMENT SEC - O (HEAD, PARA*)>
<!ELEMENT (HEAD|PARA) - O (#PCDATA)>
`)
	src := `<DOC><SEC><HEAD>h1<PARA>a<PARA>b</SEC><SEC><HEAD>h2<PARA>c</DOC>`
	root, err := ParseDocument(d, src, ParseOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	secs := root.ElementsByType("SEC")
	if len(secs) != 2 {
		t.Fatalf("secs = %d", len(secs))
	}
	if got := len(secs[0].ElementsByType("PARA")); got != 2 {
		t.Errorf("sec1 paras = %d", got)
	}
	if got := len(secs[1].ElementsByType("PARA")); got != 1 {
		t.Errorf("sec2 paras = %d", got)
	}
}

// Raw '<' in text is a markup error; escaping is mandatory (real
// SGML CDATA-content exceptions are out of scope; documents must use
// &lt;).
func TestRawAngleBracketRejected(t *testing.T) {
	d := mustDTD(t, `<!ELEMENT X - - (#PCDATA)>`)
	if _, err := ParseDocument(d, `<X>a < b</X>`, ParseOptions{Strict: true}); err == nil {
		t.Error("raw < in text accepted")
	}
	root, err := ParseDocument(d, `<X>a &lt; b</X>`, ParseOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := root.InnerText(); got != "a < b" {
		t.Errorf("escaped text = %q", got)
	}
}

// ANY content accepts arbitrary declared elements and text.
func TestAnyContentParsing(t *testing.T) {
	d := mustDTD(t, `
<!ELEMENT NOTE - - ANY>
<!ELEMENT B - - (#PCDATA)>
`)
	root, err := ParseDocument(d, `<NOTE>text <B>bold</B> more <B>again</B></NOTE>`, ParseOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(root.ElementsByType("B")); got != 2 {
		t.Errorf("B children = %d", got)
	}
	if got := root.InnerText(); got != "text bold more again" {
		t.Errorf("text = %q", got)
	}
}

// Large synthetic document: the parser handles hundreds of implied
// end tags without quadratic blowups (smoke, not a benchmark).
func TestManyImpliedEndTags(t *testing.T) {
	d := mustDTD(t, `
<!ELEMENT DOC - - (PARA+)>
<!ELEMENT PARA - O (#PCDATA)>
`)
	var sb strings.Builder
	sb.WriteString("<DOC>")
	const n = 500
	for i := 0; i < n; i++ {
		sb.WriteString("<PARA>some text content here\n")
	}
	sb.WriteString("</DOC>")
	root, err := ParseDocument(d, sb.String(), ParseOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(root.ElementsByType("PARA")); got != n {
		t.Errorf("paras = %d, want %d", got, n)
	}
}

// Matchers are independent per element instance even though the
// automaton is shared (lazily compiled once per declaration).
func TestMatcherIndependence(t *testing.T) {
	d := mustDTD(t, `<!ELEMENT X - - (A, B)> <!ELEMENT (A|B) - O (#PCDATA)>`)
	decl, _ := d.Element("X")
	m1 := decl.NewMatcher()
	m2 := decl.NewMatcher()
	if !m1.Accept("A") {
		t.Fatal("m1 rejected A")
	}
	// m2 must still be at the start.
	if !m2.CanAccept("A") || m2.CanAccept("B") {
		t.Error("matcher state leaked between instances")
	}
	if !m1.CanAccept("B") {
		t.Error("m1 lost its progress")
	}
}

// Serializer escapes the full attribute alphabet.
func TestSerializeRejectsNothing(t *testing.T) {
	n := &Node{Type: "X", Attrs: map[string]string{"A": "<>&\"'"}}
	n.AddChild(&Node{Type: TextType, Data: "<>&"})
	out := Serialize(n)
	if strings.ContainsAny(strings.TrimPrefix(strings.TrimSuffix(out, "</X>"), `<X A=`), "") {
		_ = out // structural check below is the real assertion
	}
	d := mustDTD(t, `<!ELEMENT X - - (#PCDATA)> <!ATTLIST X A CDATA #IMPLIED>`)
	root, err := ParseDocument(d, out, ParseOptions{Strict: true})
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if v, _ := root.Attr("A"); v != "<>&\"'" {
		t.Errorf("attr round trip = %q", v)
	}
	if got := root.InnerText(); got != "<>&" {
		t.Errorf("text round trip = %q", got)
	}
}
