package sgml

import (
	"testing"
	"testing/quick"
)

func matcherFor(t *testing.T, dtdSrc, element string) *Matcher {
	t.Helper()
	d := mustDTD(t, dtdSrc)
	decl, ok := d.Element(element)
	if !ok {
		t.Fatalf("element %s not declared", element)
	}
	return decl.NewMatcher()
}

func TestMatcherSequence(t *testing.T) {
	m := matcherFor(t, `
<!ELEMENT DOC - - (TITLE, ABSTRACT?, PARA+)>
<!ELEMENT (TITLE|ABSTRACT|PARA) - O (#PCDATA)>
`, "DOC")
	if m.AtEnd() {
		t.Error("empty content accepted for non-nullable model")
	}
	if !m.CanAccept("TITLE") || m.CanAccept("PARA") {
		t.Error("first set wrong")
	}
	if !m.Accept("TITLE") {
		t.Fatal("TITLE rejected")
	}
	// ABSTRACT optional: both ABSTRACT and PARA acceptable.
	if !m.CanAccept("ABSTRACT") || !m.CanAccept("PARA") {
		t.Error("optional skip broken")
	}
	if m.AtEnd() {
		t.Error("AtEnd before required PARA")
	}
	m.Accept("PARA")
	if !m.AtEnd() {
		t.Error("PARA+ satisfied but not AtEnd")
	}
	if !m.Accept("PARA") {
		t.Error("PARA repetition rejected")
	}
	if m.Accept("TITLE") {
		t.Error("TITLE accepted after PARA")
	}
}

func TestMatcherMixedContentLoop(t *testing.T) {
	m := matcherFor(t, `
<!ELEMENT PARA - O (#PCDATA | EM)*>
<!ELEMENT EM - - (#PCDATA)>
`, "PARA")
	if !m.AtEnd() {
		t.Error("empty mixed content should be complete")
	}
	seq := []string{pcdataToken, "EM", pcdataToken, "EM", "EM"}
	for _, tok := range seq {
		if !m.Accept(tok) {
			t.Fatalf("mixed loop rejected %s", tok)
		}
		if !m.AtEnd() {
			t.Errorf("mixed loop not AtEnd after %s", tok)
		}
	}
}

func TestMatcherChoice(t *testing.T) {
	m := matcherFor(t, `
<!ELEMENT X - - (A | B)>
<!ELEMENT (A|B) - - (#PCDATA)>
`, "X")
	if !m.CanAccept("A") || !m.CanAccept("B") {
		t.Error("choice first set wrong")
	}
	m.Accept("A")
	if m.CanAccept("B") {
		t.Error("choice allows second branch after first")
	}
	if !m.AtEnd() {
		t.Error("single choice not complete")
	}
}

func TestMatcherEmptyAnyCData(t *testing.T) {
	d := mustDTD(t, `
<!ELEMENT DOC - - (IMG, CODE, NOTE)>
<!ELEMENT IMG - O EMPTY>
<!ELEMENT CODE - - CDATA>
<!ELEMENT NOTE - - ANY>
`)
	img, _ := d.Element("IMG")
	mi := img.NewMatcher()
	if mi.CanAccept(pcdataToken) || mi.Accept("IMG") {
		t.Error("EMPTY accepts content")
	}
	if !mi.AtEnd() {
		t.Error("EMPTY not complete")
	}
	code, _ := d.Element("CODE")
	mc := code.NewMatcher()
	if !mc.Accept(pcdataToken) || mc.Accept("IMG") {
		t.Error("CDATA content handling wrong")
	}
	note, _ := d.Element("NOTE")
	mn := note.NewMatcher()
	if !mn.Accept("IMG") || !mn.Accept(pcdataToken) || !mn.AtEnd() {
		t.Error("ANY should accept everything")
	}
}

func TestMatcherNestedGroups(t *testing.T) {
	m := matcherFor(t, `
<!ELEMENT X - - ((A, B) | (B, A))+>
<!ELEMENT (A|B) - - (#PCDATA)>
`, "X")
	for _, tok := range []string{"A", "B", "B", "A"} {
		if !m.Accept(tok) {
			t.Fatalf("rejected %s", tok)
		}
	}
	if !m.AtEnd() {
		t.Error("two complete pairs not AtEnd")
	}
	m.Accept("A")
	if m.AtEnd() {
		t.Error("half pair reported complete")
	}
}

// naiveMatch is a reference recognizer: does seq match the model?
// Implemented by brute-force regex-like backtracking over the CM
// tree. Used to cross-check the Glushkov automaton.
func naiveMatch(m *CM, seq []string) bool {
	ways := naiveConsume(m, seq)
	for _, rest := range ways {
		if rest == 0 { // consumed everything
			return true
		}
	}
	return false
}

// naiveConsume returns the possible numbers of remaining tokens
// after matching m against a prefix of seq.
func naiveConsume(m *CM, seq []string) []int {
	base := func(s []string) []int {
		switch m.Kind {
		case CMName:
			if len(s) > 0 && s[0] == m.Name {
				return []int{len(s) - 1}
			}
			return nil
		case CMPCData:
			// Zero or more consecutive text chunks (see automaton.go).
			rests := []int{len(s)}
			i := 0
			for i < len(s) && s[i] == pcdataToken {
				i++
				rests = append(rests, len(s)-i)
			}
			return rests
		case CMSeq:
			rests := []int{len(s)}
			for _, c := range m.Children {
				var next []int
				for _, r := range rests {
					sub := c
					for _, r2 := range naiveConsume(sub, s[len(s)-r:]) {
						next = appendUnique(next, []int{r2})
					}
				}
				rests = next
				if len(rests) == 0 {
					return nil
				}
			}
			return rests
		case CMChoice:
			var out []int
			for _, c := range m.Children {
				out = appendUnique(out, naiveConsume(c, s))
			}
			return out
		}
		return nil
	}
	// Occurrence handling around the base matcher.
	inner := *m
	inner.Occ = 0
	matchOnce := func(s []string) []int { mm := inner; return naiveConsumeNoOcc(&mm, s, base) }
	switch m.Occ {
	case 0:
		return matchOnce(seq)
	case '?':
		return appendUnique([]int{len(seq)}, matchOnce(seq))
	case '*', '+':
		results := []int{}
		frontier := []int{len(seq)}
		seen := map[int]bool{len(seq): true}
		if m.Occ == '*' {
			results = append(results, len(seq))
		}
		for len(frontier) > 0 {
			var next []int
			for _, r := range frontier {
				for _, r2 := range matchOnce(seq[len(seq)-r:]) {
					if !seen[r2] {
						seen[r2] = true
						next = append(next, r2)
						results = appendUnique(results, []int{r2})
					} else {
						results = appendUnique(results, []int{r2})
					}
				}
			}
			frontier = next
		}
		return results
	}
	return nil
}

func naiveConsumeNoOcc(m *CM, s []string, base func([]string) []int) []int {
	return base(s)
}

// Property: the Glushkov matcher agrees with the naive recognizer on
// random token sequences against a fixed set of tricky models.
func TestMatcherAgreesWithNaiveProperty(t *testing.T) {
	d := mustDTD(t, `
<!ELEMENT M1 - - (A, B?, C*)>
<!ELEMENT M2 - - ((A | B)+, C)>
<!ELEMENT M3 - - (#PCDATA | A)*>
<!ELEMENT M4 - - ((A, B) | (B, A))+>
<!ELEMENT M5 - - (A?, (B, C)*, A?)>
<!ELEMENT (A|B|C) - - (#PCDATA)>
`)
	models := []string{"M1", "M2", "M3", "M4", "M5"}
	alphabet := []string{"A", "B", "C", pcdataToken}
	f := func(which uint8, seed []byte) bool {
		name := models[int(which)%len(models)]
		decl, _ := d.Element(name)
		seq := make([]string, 0, len(seed)%7)
		for i := 0; i < len(seed)%7; i++ {
			seq = append(seq, alphabet[int(seed[i])%len(alphabet)])
		}
		m := decl.NewMatcher()
		ok := true
		for _, tok := range seq {
			if !m.Accept(tok) {
				ok = false
				break
			}
		}
		got := ok && m.AtEnd()
		want := naiveMatch(decl.Model, seq)
		if got != want {
			t.Logf("%s vs %v: glushkov=%v naive=%v", name, seq, got, want)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}
