package sgml

import "strings"

// TextType is the node type of character-data nodes.
const TextType = "#text"

// Node is one node of a parsed document: an element or a text leaf.
type Node struct {
	// Type is the (upper-case) element name, or TextType.
	Type string
	// Attrs holds the element's attributes (names folded).
	Attrs map[string]string
	// Data is the character data of a text node.
	Data     string
	Parent   *Node
	Children []*Node
}

// IsText reports whether n is a character-data node.
func (n *Node) IsText() bool { return n.Type == TextType }

// Attr returns an attribute value.
func (n *Node) Attr(name string) (string, bool) {
	v, ok := n.Attrs[foldName(name)]
	return v, ok
}

// AddChild appends c and sets its parent.
func (n *Node) AddChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// InnerText concatenates all descendant character data in document
// order, separating leaves with single spaces.
func (n *Node) InnerText() string {
	var parts []string
	n.Walk(func(m *Node) bool {
		if m.IsText() {
			if t := strings.TrimSpace(m.Data); t != "" {
				parts = append(parts, t)
			}
		}
		return true
	})
	return strings.Join(parts, " ")
}

// OwnText concatenates only the direct text children of n.
func (n *Node) OwnText() string {
	var parts []string
	for _, c := range n.Children {
		if c.IsText() {
			if t := strings.TrimSpace(c.Data); t != "" {
				parts = append(parts, t)
			}
		}
	}
	return strings.Join(parts, " ")
}

// Walk visits n and its descendants in document order. The visitor
// returns false to prune the subtree below the visited node.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// ElementsByType returns all descendant elements (including n) with
// the given type, in document order.
func (n *Node) ElementsByType(name string) []*Node {
	name = foldName(name)
	var out []*Node
	n.Walk(func(m *Node) bool {
		if m.Type == name {
			out = append(out, m)
		}
		return true
	})
	return out
}

// Leaves returns the text leaves below n in document order.
func (n *Node) Leaves() []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if m.IsText() {
			out = append(out, m)
		}
		return true
	})
	return out
}

// ElementChildren returns the element (non-text) children of n.
func (n *Node) ElementChildren() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if !c.IsText() {
			out = append(out, c)
		}
	}
	return out
}

// Ancestor returns the nearest ancestor (excluding n itself) with
// the given element type, or nil.
func (n *Node) Ancestor(name string) *Node {
	name = foldName(name)
	for p := n.Parent; p != nil; p = p.Parent {
		if p.Type == name {
			return p
		}
	}
	return nil
}

// NextSibling returns the following sibling element (skipping text
// nodes), or nil.
func (n *Node) NextSibling() *Node {
	if n.Parent == nil {
		return nil
	}
	sibs := n.Parent.Children
	seen := false
	for _, s := range sibs {
		if s == n {
			seen = true
			continue
		}
		if seen && !s.IsText() {
			return s
		}
	}
	return nil
}

// CountNodes returns the number of nodes in the subtree (elements
// and text leaves).
func (n *Node) CountNodes() int {
	count := 0
	n.Walk(func(*Node) bool { count++; return true })
	return count
}
