package sgml

import "strings"

// Serialize renders the tree back to normalized SGML text: all tags
// explicit, attributes sorted, character data escaped. The output
// re-parses to an equivalent tree (round-trip property tested in
// writer_test.go).
func Serialize(n *Node) string {
	var sb strings.Builder
	writeNode(&sb, n)
	return sb.String()
}

func writeNode(sb *strings.Builder, n *Node) {
	if n.IsText() {
		sb.WriteString(escapeText(n.Data))
		return
	}
	sb.WriteByte('<')
	sb.WriteString(n.Type)
	for _, name := range sortedAttNames(n.Attrs) {
		sb.WriteByte(' ')
		sb.WriteString(name)
		sb.WriteString(`="`)
		sb.WriteString(escapeAttr(n.Attrs[name]))
		sb.WriteByte('"')
	}
	sb.WriteByte('>')
	for _, c := range n.Children {
		writeNode(sb, c)
	}
	sb.WriteString("</")
	sb.WriteString(n.Type)
	sb.WriteByte('>')
}

func escapeText(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

func escapeAttr(s string) string {
	s = escapeText(s)
	return strings.ReplaceAll(s, `"`, "&quot;")
}
