package sgml

import (
	"fmt"
	"strings"
)

// lexer is the shared low-level scanner for DTD and document text.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (lx *lexer) eof() bool { return lx.pos >= len(lx.src) }

func (lx *lexer) peekByte() (byte, bool) {
	if lx.eof() {
		return 0, false
	}
	return lx.src[lx.pos], true
}

func (lx *lexer) peekIs(c byte) bool {
	b, ok := lx.peekByte()
	return ok && b == c
}

func (lx *lexer) advance(n int) { lx.pos += n }

// consume matches lit case-insensitively and advances past it.
func (lx *lexer) consume(lit string) bool {
	if lx.pos+len(lit) > len(lx.src) {
		return false
	}
	if !strings.EqualFold(lx.src[lx.pos:lx.pos+len(lit)], lit) {
		return false
	}
	lx.pos += len(lit)
	return true
}

// consumeWord matches a keyword with a word boundary after it.
func (lx *lexer) consumeWord(word string) bool {
	end := lx.pos + len(word)
	if end > len(lx.src) {
		return false
	}
	if !strings.EqualFold(lx.src[lx.pos:end], word) {
		return false
	}
	if end < len(lx.src) && isNameByte(lx.src[end]) {
		return false
	}
	lx.pos = end
	return true
}

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func isNameStartByte(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameByte(c byte) bool {
	return isNameStartByte(c) || (c >= '0' && c <= '9') ||
		c == '.' || c == '-' || c == '_'
}

// readName reads an SGML name token ("" if none starts here).
func (lx *lexer) readName() string {
	start := lx.pos
	if c, ok := lx.peekByte(); !ok || !isNameStartByte(c) {
		return ""
	}
	for !lx.eof() && isNameByte(lx.src[lx.pos]) {
		lx.pos++
	}
	return lx.src[start:lx.pos]
}

// skipSpaceAndComments skips whitespace, declaration-internal
// comments (-- ... --) and full comment declarations (<!-- ... -->).
func (lx *lexer) skipSpaceAndComments() {
	for {
		for !lx.eof() && isSpaceByte(lx.src[lx.pos]) {
			lx.pos++
		}
		if strings.HasPrefix(lx.src[lx.pos:], "<!--") {
			end := strings.Index(lx.src[lx.pos+4:], "-->")
			if end < 0 {
				lx.pos = len(lx.src)
				return
			}
			lx.pos += 4 + end + 3
			continue
		}
		if strings.HasPrefix(lx.src[lx.pos:], "--") {
			end := strings.Index(lx.src[lx.pos+2:], "--")
			if end < 0 {
				lx.pos = len(lx.src)
				return
			}
			lx.pos += 2 + end + 2
			continue
		}
		return
	}
}

// skipTo advances past the next occurrence of c, reporting success.
func (lx *lexer) skipTo(c byte) bool {
	i := strings.IndexByte(lx.src[lx.pos:], c)
	if i < 0 {
		lx.pos = len(lx.src)
		return false
	}
	lx.pos += i + 1
	return true
}

// readOmissionIndicator reads a start/end-tag omission indicator:
// '-' (tag required) or 'O' (omissible), which must be followed by
// whitespace or a model-group opener to count as an indicator.
func (lx *lexer) readOmissionIndicator() (omit bool, ok bool) {
	c, has := lx.peekByte()
	if !has {
		return false, false
	}
	if c != '-' && c != 'O' && c != 'o' {
		return false, false
	}
	if lx.pos+1 < len(lx.src) {
		next := lx.src[lx.pos+1]
		if !isSpaceByte(next) && next != '(' {
			return false, false
		}
	}
	lx.advance(1)
	return c == 'O' || c == 'o', true
}

// readOcc reads an occurrence indicator if immediately adjacent.
func (lx *lexer) readOcc() byte {
	c, ok := lx.peekByte()
	if !ok {
		return 0
	}
	switch c {
	case '?', '*', '+':
		lx.advance(1)
		return c
	}
	return 0
}

// readLiteral reads a quoted attribute-value literal.
func (lx *lexer) readLiteral() (string, error) {
	q, ok := lx.peekByte()
	if !ok || (q != '"' && q != '\'') {
		return "", lx.errf("expected quoted literal")
	}
	lx.advance(1)
	start := lx.pos
	i := strings.IndexByte(lx.src[lx.pos:], q)
	if i < 0 {
		return "", lx.errf("unterminated literal")
	}
	lx.pos += i + 1
	return lx.src[start : start+i], nil
}

// peekContext returns a short window of upcoming input for error
// messages.
func (lx *lexer) peekContext() string {
	end := lx.pos + 20
	if end > len(lx.src) {
		end = len(lx.src)
	}
	return lx.src[lx.pos:end]
}

// errf builds a ParseError carrying the current line and column.
func (lx *lexer) errf(format string, args ...interface{}) error {
	line, col := 1, 1
	for i := 0; i < lx.pos && i < len(lx.src); i++ {
		if lx.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return &ParseError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
