package sgml

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSerializeRoundTrip(t *testing.T) {
	d := mustDTD(t, testDTD)
	root, err := ParseDocument(d, paperFragment, ParseOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	out := Serialize(root)
	if !strings.Contains(out, "</PARA>") {
		t.Errorf("serializer must emit explicit end tags: %q", out)
	}
	root2, err := ParseDocument(d, out, ParseOptions{Strict: true})
	if err != nil {
		t.Fatalf("reparse of serialized output: %v\n%s", err, out)
	}
	if !treesEqual(root, root2) {
		t.Errorf("round trip changed the tree:\n%s\nvs\n%s", Serialize(root), Serialize(root2))
	}
}

func TestSerializeEscaping(t *testing.T) {
	d := mustDTD(t, testDTD)
	n := &Node{Type: "MMFDOC", Attrs: map[string]string{"AUTHOR": `a<b&"c"`}}
	for _, typ := range []string{"LOGBOOK", "DOCTITLE", "ABSTRACT", "PARA"} {
		el := &Node{Type: typ, Attrs: map[string]string{}}
		el.AddChild(&Node{Type: TextType, Data: "x < y & z"})
		n.AddChild(el)
	}
	out := Serialize(n)
	root, err := ParseDocument(d, out, ParseOptions{Strict: true})
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if v, _ := root.Attr("AUTHOR"); v != `a<b&"c"` {
		t.Errorf("attr escaping round trip = %q", v)
	}
	if got := root.ElementsByType("PARA")[0].InnerText(); got != "x < y & z" {
		t.Errorf("text escaping round trip = %q", got)
	}
}

func treesEqual(a, b *Node) bool {
	if a.Type != b.Type {
		return false
	}
	if a.IsText() {
		return strings.TrimSpace(a.Data) == strings.TrimSpace(b.Data)
	}
	if len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for k, v := range a.Attrs {
		if b.Attrs[k] != v {
			return false
		}
	}
	if len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !treesEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Property: serialize-then-parse is the identity for randomly
// generated valid MMF documents.
func TestSerializeRoundTripProperty(t *testing.T) {
	d := mustDTD(t, testDTD)
	words := []string{"www", "nii", "telnet", "journal", "media", "net"}
	f := func(seed []byte) bool {
		if len(seed) == 0 {
			seed = []byte{1}
		}
		pick := func(i int) string { return words[int(seed[i%len(seed)])%len(words)] }
		var sb strings.Builder
		sb.WriteString("<MMFDOC><LOGBOOK>")
		sb.WriteString(pick(0))
		sb.WriteString("<DOCTITLE>")
		sb.WriteString(pick(1))
		sb.WriteString("<ABSTRACT>")
		sb.WriteString(pick(2))
		paras := int(seed[0])%4 + 1
		for i := 0; i < paras; i++ {
			sb.WriteString("<PARA>")
			sb.WriteString(pick(i + 3))
			if seed[i%len(seed)]%2 == 0 {
				sb.WriteString(" <EM>")
				sb.WriteString(pick(i + 4))
				sb.WriteString("</EM> ")
				sb.WriteString(pick(i + 5))
			}
		}
		sb.WriteString("</MMFDOC>")
		root, err := ParseDocument(d, sb.String(), ParseOptions{Strict: true})
		if err != nil {
			t.Logf("generator produced invalid doc: %v", err)
			return false
		}
		out := Serialize(root)
		root2, err := ParseDocument(d, out, ParseOptions{Strict: true})
		if err != nil {
			t.Logf("reparse failed: %v", err)
			return false
		}
		return treesEqual(root, root2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
