package sgml

// Content-model automata via the Glushkov (position automaton)
// construction: every leaf of the content model is a position; the
// matcher tracks the set of positions reached so far. This gives
// linear-time validation and — crucially for OMITTAG inference — a
// cheap CanAccept(token) test and a cheap "may the content end here"
// test, both of which the document parser consults when deciding
// whether an element's end tag can be implied.

// pcdataToken is the token used for character data in content-model
// matching.
const pcdataToken = "#PCDATA"

// cmAutomaton is the compiled form of a content model.
type cmAutomaton struct {
	labels   []string        // position -> token label
	first    []int           // start transitions
	follow   [][]int         // position -> successor positions
	last     map[int]bool    // accepting positions
	nullable bool            // empty content acceptable
	byLabel  map[string]bool // quick "token occurs at all" test
}

// compile builds the Glushkov automaton for a model.
func compile(m *CM) *cmAutomaton {
	a := &cmAutomaton{last: make(map[int]bool), byLabel: make(map[string]bool)}
	if m == nil {
		a.nullable = true
		return a
	}
	info := a.build(m)
	a.nullable = info.nullable
	a.first = info.first
	for _, p := range info.last {
		a.last[p] = true
	}
	return a
}

type cmInfo struct {
	nullable    bool
	first, last []int
}

func (a *cmAutomaton) newPos(label string) int {
	p := len(a.labels)
	a.labels = append(a.labels, label)
	a.follow = append(a.follow, nil)
	a.byLabel[label] = true
	return p
}

func (a *cmAutomaton) addFollow(from int, to []int) {
	a.follow[from] = appendUnique(a.follow[from], to)
}

func appendUnique(dst []int, src []int) []int {
	for _, s := range src {
		found := false
		for _, d := range dst {
			if d == s {
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, s)
		}
	}
	return dst
}

func (a *cmAutomaton) build(m *CM) cmInfo {
	var info cmInfo
	switch m.Kind {
	case CMName:
		p := a.newPos(m.Name)
		info = cmInfo{first: []int{p}, last: []int{p}}
	case CMPCData:
		// #PCDATA denotes zero or more chunks of character data:
		// empty text content is valid, and comments or entity
		// boundaries may split text into consecutive chunks. Model
		// it as a nullable self-looping position.
		p := a.newPos(pcdataToken)
		info = cmInfo{nullable: true, first: []int{p}, last: []int{p}}
		a.addFollow(p, []int{p})
	case CMSeq:
		infos := make([]cmInfo, len(m.Children))
		for i, c := range m.Children {
			infos[i] = a.build(c)
		}
		// follow: last(ci) -> first(cj) for the nullable gap i<j.
		for i := 0; i < len(infos); i++ {
			for j := i + 1; j < len(infos); j++ {
				for _, p := range infos[i].last {
					a.addFollow(p, infos[j].first)
				}
				if !infos[j].nullable {
					break
				}
			}
		}
		info.nullable = true
		for i := range infos {
			if !infos[i].nullable {
				info.nullable = false
				break
			}
		}
		for i := range infos {
			info.first = append(info.first, infos[i].first...)
			if !infos[i].nullable {
				break
			}
		}
		for i := len(infos) - 1; i >= 0; i-- {
			info.last = append(info.last, infos[i].last...)
			if !infos[i].nullable {
				break
			}
		}
	case CMChoice:
		for _, c := range m.Children {
			ci := a.build(c)
			info.nullable = info.nullable || ci.nullable
			info.first = append(info.first, ci.first...)
			info.last = append(info.last, ci.last...)
		}
	}
	switch m.Occ {
	case '?':
		info.nullable = true
	case '*':
		info.nullable = true
		for _, p := range info.last {
			a.addFollow(p, info.first)
		}
	case '+':
		for _, p := range info.last {
			a.addFollow(p, info.first)
		}
	}
	return info
}

// Matcher tracks progress through one element's content.
type Matcher struct {
	decl    *ElementDecl
	a       *cmAutomaton
	current []int
	started bool
}

// NewMatcher returns a matcher positioned before any content.
func (e *ElementDecl) NewMatcher() *Matcher {
	m := &Matcher{decl: e}
	if e.Declared == ContentModel {
		if e.automaton == nil {
			e.automaton = compile(e.Model)
		}
		m.a = e.automaton
	}
	return m
}

// CanAccept reports whether the next content token may be tok
// (an element name or pcdataToken).
func (m *Matcher) CanAccept(tok string) bool {
	switch m.decl.Declared {
	case ContentEmpty:
		return false
	case ContentAny:
		return true
	case ContentCData:
		return tok == pcdataToken
	}
	return len(m.next(tok)) > 0
}

func (m *Matcher) next(tok string) []int {
	if !m.a.byLabel[tok] {
		return nil
	}
	var out []int
	if !m.started {
		for _, p := range m.a.first {
			if m.a.labels[p] == tok {
				out = append(out, p)
			}
		}
		return out
	}
	seen := make(map[int]bool)
	for _, p := range m.current {
		for _, q := range m.a.follow[p] {
			if m.a.labels[q] == tok && !seen[q] {
				seen[q] = true
				out = append(out, q)
			}
		}
	}
	return out
}

// Accept advances over tok, reporting whether it was allowed.
func (m *Matcher) Accept(tok string) bool {
	switch m.decl.Declared {
	case ContentEmpty:
		return false
	case ContentAny:
		m.started = true
		return true
	case ContentCData:
		if tok != pcdataToken {
			return false
		}
		m.started = true
		return true
	}
	next := m.next(tok)
	if len(next) == 0 {
		return false
	}
	m.current = next
	m.started = true
	return true
}

// AtEnd reports whether the content seen so far forms a complete
// instance of the model (i.e. the end tag may appear or be implied
// here).
func (m *Matcher) AtEnd() bool {
	switch m.decl.Declared {
	case ContentEmpty, ContentAny, ContentCData:
		return true
	}
	if !m.started {
		return m.a.nullable
	}
	for _, p := range m.current {
		if m.a.last[p] {
			return true
		}
	}
	return false
}
