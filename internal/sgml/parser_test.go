package sgml

import (
	"strings"
	"testing"
)

// paperFragment is the exact MMF fragment from Section 4.3 of the
// paper (end tags of LOGBOOK/DOCTITLE/ABSTRACT/PARA omitted except
// where the authors wrote them).
const paperFragment = `<MMFDOC>
<LOGBOOK> ... </LOGBOOK>
<DOCTITLE>Telnet</DOCTITLE>
<ABSTRACT></ABSTRACT>
<PARA>Telnet is a protocol for ...</PARA>
<PARA>Telnet enables ...</PARA>
</MMFDOC>`

func TestParsePaperFragment(t *testing.T) {
	d := mustDTD(t, testDTD)
	root, err := ParseDocument(d, paperFragment, ParseOptions{Strict: true})
	if err != nil {
		t.Fatalf("ParseDocument: %v", err)
	}
	if root.Type != "MMFDOC" {
		t.Fatalf("root = %s", root.Type)
	}
	kids := root.ElementChildren()
	types := make([]string, len(kids))
	for i, k := range kids {
		types[i] = k.Type
	}
	want := []string{"LOGBOOK", "DOCTITLE", "ABSTRACT", "PARA", "PARA"}
	if strings.Join(types, " ") != strings.Join(want, " ") {
		t.Fatalf("children = %v, want %v", types, want)
	}
	paras := root.ElementsByType("PARA")
	if len(paras) != 2 {
		t.Fatalf("paras = %d", len(paras))
	}
	if got := paras[0].InnerText(); got != "Telnet is a protocol for ..." {
		t.Errorf("para 1 text = %q", got)
	}
	if got := root.ElementsByType("DOCTITLE")[0].InnerText(); got != "Telnet" {
		t.Errorf("title = %q", got)
	}
	// Default attribute applied from the ATTLIST.
	if v, ok := root.Attr("KIND"); !ok || v != "news" {
		t.Errorf("KIND default = %q, %v", v, ok)
	}
}

func TestParseOmittedEndTags(t *testing.T) {
	d := mustDTD(t, testDTD)
	// All omissible end tags omitted, exactly as SGML authors wrote.
	src := `<MMFDOC YEAR="1994">
<LOGBOOK>log entry
<DOCTITLE>WWW and NII
<ABSTRACT>about networks
<PARA>the WWW is growing
<PARA>the NII is coming
</MMFDOC>`
	root, err := ParseDocument(d, src, ParseOptions{Strict: true})
	if err != nil {
		t.Fatalf("ParseDocument: %v", err)
	}
	paras := root.ElementsByType("PARA")
	if len(paras) != 2 {
		t.Fatalf("paras = %d, want 2 (end-tag inference broken)", len(paras))
	}
	if got := paras[1].InnerText(); got != "the NII is coming" {
		t.Errorf("para 2 = %q", got)
	}
	if v, _ := root.Attr("year"); v != "1994" {
		t.Errorf("YEAR = %q", v)
	}
}

func TestParseNestedMixedContent(t *testing.T) {
	d := mustDTD(t, testDTD)
	src := `<MMFDOC><LOGBOOK>x<DOCTITLE>t<ABSTRACT>a<PARA>see the <EM>important</EM> part</MMFDOC>`
	root, err := ParseDocument(d, src, ParseOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	para := root.ElementsByType("PARA")[0]
	if got := para.InnerText(); got != "see the important part" {
		t.Errorf("mixed text = %q", got)
	}
	if ems := para.ElementsByType("EM"); len(ems) != 1 || ems[0].InnerText() != "important" {
		t.Errorf("EM = %v", ems)
	}
	if got := para.OwnText(); got != "see the part" {
		t.Errorf("OwnText = %q", got)
	}
}

func TestParseStrictValidationErrors(t *testing.T) {
	d := mustDTD(t, testDTD)
	cases := map[string]string{
		"missing required part": `<MMFDOC><LOGBOOK>x</MMFDOC>`,
		"undeclared element":    `<MMFDOC><BOGUS>x</BOGUS></MMFDOC>`,
		"element out of order":  `<MMFDOC><PARA>x</PARA></MMFDOC>`,
		"undeclared attribute":  `<MMFDOC COLOR="red"><LOGBOOK>x<DOCTITLE>t<ABSTRACT>a<PARA>p</MMFDOC>`,
		"bad enum value":        `<MMFDOC KIND="poem"><LOGBOOK>x<DOCTITLE>t<ABSTRACT>a<PARA>p</MMFDOC>`,
		"bad number":            `<MMFDOC YEAR="next"><LOGBOOK>x<DOCTITLE>t<ABSTRACT>a<PARA>p</MMFDOC>`,
		"stray end tag":         `<MMFDOC><LOGBOOK>x<DOCTITLE>t<ABSTRACT>a<PARA>p</EM></MMFDOC>`,
		"multiple roots":        `<MMFDOC><LOGBOOK>x<DOCTITLE>t<ABSTRACT>a<PARA>p</MMFDOC><MMFDOC><LOGBOOK>y<DOCTITLE>t<ABSTRACT>a<PARA>q</MMFDOC>`,
		"text outside root":     `hello <MMFDOC><LOGBOOK>x<DOCTITLE>t<ABSTRACT>a<PARA>p</MMFDOC>`,
		"unomissible end":       `<MMFDOC><LOGBOOK>x<DOCTITLE>t<ABSTRACT>a<PARA><EM>unclosed</MMFDOC>`,
	}
	for name, src := range cases {
		if _, err := ParseDocument(d, src, ParseOptions{Strict: true}); err == nil {
			t.Errorf("%s: strict parse succeeded, want error", name)
		}
	}
}

func TestParseLenientTolerance(t *testing.T) {
	d := mustDTD(t, testDTD)
	// Missing ABSTRACT and an undeclared attribute: lenient mode
	// still builds a tree.
	src := `<MMFDOC COLOR="red"><LOGBOOK>x<DOCTITLE>t<PARA>p</MMFDOC>`
	root, err := ParseDocument(d, src, ParseOptions{})
	if err != nil {
		t.Fatalf("lenient parse: %v", err)
	}
	if v, _ := root.Attr("COLOR"); v != "red" {
		t.Errorf("lenient attr lost: %q", v)
	}
	if len(root.ElementsByType("PARA")) != 1 {
		t.Error("lenient tree misshapen")
	}
}

func TestParseEntities(t *testing.T) {
	d := mustDTD(t, testDTD)
	src := `<MMFDOC AUTHOR="M &amp; K"><LOGBOOK>x<DOCTITLE>a &lt; b &#228; &unknown;<ABSTRACT>y<PARA>p</MMFDOC>`
	root, err := ParseDocument(d, src, ParseOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	title := root.ElementsByType("DOCTITLE")[0].InnerText()
	if title != "a < b ä &unknown;" {
		t.Errorf("entity decoding = %q", title)
	}
	if v, _ := root.Attr("AUTHOR"); v != "M & K" {
		t.Errorf("attr entity = %q", v)
	}
}

func TestParseCommentsAndDoctypeSkipped(t *testing.T) {
	d := mustDTD(t, testDTD)
	src := `<!DOCTYPE MMFDOC SYSTEM "mmf.dtd">
<!-- an issue of the journal -->
<MMFDOC><LOGBOOK>x<DOCTITLE>t<!-- inline -->i<ABSTRACT>a<PARA>p</MMFDOC>`
	root, err := ParseDocument(d, src, ParseOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := root.ElementsByType("DOCTITLE")[0].InnerText(); got != "t i" {
		t.Errorf("comment handling: title = %q", got)
	}
}

func TestParseEmptyElementAndSelfClose(t *testing.T) {
	d := mustDTD(t, `
<!ELEMENT DOC - - (IMG+, CAPTION)>
<!ELEMENT IMG - O EMPTY>
<!ELEMENT CAPTION - O (#PCDATA)>
<!ATTLIST IMG SRC CDATA #REQUIRED>
`)
	src := `<DOC><IMG SRC="a.gif"><IMG SRC="b.gif"/><CAPTION>two images</DOC>`
	root, err := ParseDocument(d, src, ParseOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	imgs := root.ElementsByType("IMG")
	if len(imgs) != 2 {
		t.Fatalf("imgs = %d", len(imgs))
	}
	if v, _ := imgs[1].Attr("SRC"); v != "b.gif" {
		t.Errorf("img2 src = %q", v)
	}
	// Required attribute enforcement.
	if _, err := ParseDocument(d, `<DOC><IMG><CAPTION>x</DOC>`, ParseOptions{Strict: true}); err == nil {
		t.Error("missing required attribute accepted")
	}
}

func TestStructuralNavigation(t *testing.T) {
	d := mustDTD(t, testDTD)
	root, err := ParseDocument(d, paperFragment, ParseOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	paras := root.ElementsByType("PARA")
	if next := paras[0].NextSibling(); next == nil || next != paras[1] {
		t.Error("NextSibling(para1) != para2")
	}
	if paras[1].NextSibling() != nil {
		t.Error("NextSibling(last) != nil")
	}
	if anc := paras[0].Ancestor("MMFDOC"); anc != root {
		t.Error("Ancestor(MMFDOC) wrong")
	}
	if paras[0].Ancestor("PARA") != nil {
		t.Error("Ancestor should exclude self")
	}
	if n := root.CountNodes(); n < 7 {
		t.Errorf("CountNodes = %d", n)
	}
}

func TestUnquotedAttributeValue(t *testing.T) {
	d := mustDTD(t, testDTD)
	src := `<MMFDOC KIND=report><LOGBOOK>x<DOCTITLE>t<ABSTRACT>a<PARA>p</MMFDOC>`
	root, err := ParseDocument(d, src, ParseOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := root.Attr("KIND"); v != "report" {
		t.Errorf("unquoted attr = %q", v)
	}
}
