package sgml

import (
	"strings"
	"testing"
)

// testDTD is an MMF-like document type mirroring the paper's example
// fragment (Section 4.3).
const testDTD = `
<!-- MultiMedia Forum-like document type -->
<!ELEMENT MMFDOC   - -  (LOGBOOK, DOCTITLE, ABSTRACT, PARA+)>
<!ELEMENT LOGBOOK  - O  (#PCDATA)>
<!ELEMENT DOCTITLE - O  (#PCDATA)>
<!ELEMENT ABSTRACT - O  (#PCDATA)>
<!ELEMENT PARA     - O  (#PCDATA | EM)*>
<!ELEMENT EM       - -  (#PCDATA)>
<!ATTLIST MMFDOC
    YEAR   NUMBER #IMPLIED
    KIND   (report | review | news) "news"
    AUTHOR CDATA  #IMPLIED>
`

func mustDTD(t *testing.T, src string) *DTD {
	t.Helper()
	d, err := ParseDTD(src)
	if err != nil {
		t.Fatalf("ParseDTD: %v", err)
	}
	return d
}

func TestParseDTDElements(t *testing.T) {
	d := mustDTD(t, testDTD)
	names := d.ElementNames()
	want := []string{"MMFDOC", "LOGBOOK", "DOCTITLE", "ABSTRACT", "PARA", "EM"}
	if len(names) != len(want) {
		t.Fatalf("elements = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("element %d = %q, want %q", i, names[i], want[i])
		}
	}
	if d.Name != "MMFDOC" {
		t.Errorf("doctype name = %q, want MMFDOC", d.Name)
	}
	mmf, _ := d.Element("mmfdoc") // case-insensitive lookup
	if mmf == nil {
		t.Fatal("Element lookup failed")
	}
	if mmf.OmitEnd || mmf.OmitStart {
		t.Error("MMFDOC omission should be - -")
	}
	para, _ := d.Element("PARA")
	if !para.OmitEnd || para.OmitStart {
		t.Error("PARA omission should be - O")
	}
	if got := mmf.Model.String(); got != "(LOGBOOK, DOCTITLE, ABSTRACT, PARA+)" {
		t.Errorf("MMFDOC model = %q", got)
	}
	if got := para.Model.String(); got != "(#PCDATA | EM)*" {
		t.Errorf("PARA model = %q", got)
	}
	if !para.HasPCData() || mmf.HasPCData() {
		t.Error("HasPCData misreported")
	}
}

func TestParseDTDAttlist(t *testing.T) {
	d := mustDTD(t, testDTD)
	mmf, _ := d.Element("MMFDOC")
	year, ok := mmf.Att("year")
	if !ok || year.Type != "NUMBER" || !year.Implied {
		t.Errorf("YEAR def = %+v, %v", year, ok)
	}
	kind, ok := mmf.Att("KIND")
	if !ok || kind.Type != "ENUM" || kind.Default != "news" || len(kind.Enum) != 3 {
		t.Errorf("KIND def = %+v", kind)
	}
	if _, ok := mmf.Att("GHOST"); ok {
		t.Error("undeclared attribute found")
	}
}

func TestParseDTDNameGroups(t *testing.T) {
	d := mustDTD(t, `
<!ELEMENT DOC - - (HEAD, (A|B)*)>
<!ELEMENT (HEAD) - O (#PCDATA)>
<!ELEMENT (A|B) - - (#PCDATA)>
<!ATTLIST (A|B) CLASS CDATA #IMPLIED>
`)
	a, okA := d.Element("A")
	b, okB := d.Element("B")
	if !okA || !okB {
		t.Fatal("name-group elements not declared")
	}
	if _, ok := a.Att("CLASS"); !ok {
		t.Error("attlist name group not applied to A")
	}
	if _, ok := b.Att("CLASS"); !ok {
		t.Error("attlist name group not applied to B")
	}
}

func TestParseDTDDoctypeWrapper(t *testing.T) {
	d := mustDTD(t, `<!DOCTYPE REPORT [
<!ELEMENT REPORT - - (TITLE, BODY)>
<!ELEMENT TITLE - O (#PCDATA)>
<!ELEMENT BODY - O (#PCDATA)>
]>`)
	if d.Name != "REPORT" {
		t.Errorf("doctype name = %q", d.Name)
	}
	if len(d.Elements) != 3 {
		t.Errorf("elements = %v", d.ElementNames())
	}
}

func TestParseDTDContentKinds(t *testing.T) {
	d := mustDTD(t, `
<!ELEMENT DOC - - (IMG | CODE | NOTE)+>
<!ELEMENT IMG - O EMPTY>
<!ELEMENT CODE - - CDATA>
<!ELEMENT NOTE - - ANY>
`)
	img, _ := d.Element("IMG")
	if img.Declared != ContentEmpty {
		t.Errorf("IMG declared = %v, want EMPTY", img.Declared)
	}
	code, _ := d.Element("CODE")
	if code.Declared != ContentCData || !code.HasPCData() {
		t.Errorf("CODE declared = %v", code.Declared)
	}
	note, _ := d.Element("NOTE")
	if note.Declared != ContentAny || !note.HasPCData() {
		t.Errorf("NOTE declared = %v", note.Declared)
	}
}

func TestParseDTDErrors(t *testing.T) {
	cases := map[string]string{
		"empty":              ``,
		"no elements":        `<!-- nothing -->`,
		"amp connector":      `<!ELEMENT X - - (A & B)> <!ELEMENT (A|B) - - (#PCDATA)>`,
		"undeclared ref":     `<!ELEMENT X - - (GHOST)>`,
		"double decl":        `<!ELEMENT X - - (#PCDATA)> <!ELEMENT X - - (#PCDATA)>`,
		"exceptions":         `<!ELEMENT X - - (#PCDATA) +(Y)> <!ELEMENT Y - - (#PCDATA)>`,
		"attlist undeclared": `<!ATTLIST GHOST A CDATA #IMPLIED>`,
		"unterminated":       `<!ELEMENT X - - (#PCDATA)`,
		"mixed connectors":   `<!ELEMENT X - - (A, B | C)> <!ELEMENT (A|B|C) - - (#PCDATA)>`,
		"bad declaration":    `<!WEIRD X>`,
	}
	for name, src := range cases {
		if _, err := ParseDTD(src); err == nil {
			t.Errorf("%s: ParseDTD succeeded, want error", name)
		}
	}
}

func TestParseDTDOccurrenceCombination(t *testing.T) {
	d := mustDTD(t, `
<!ELEMENT X - - ((A+)?, (B?)*)>
<!ELEMENT (A|B) - - (#PCDATA)>
`)
	x, _ := d.Element("X")
	s := x.Model.String()
	if !strings.Contains(s, "A*") || !strings.Contains(s, "B*") {
		t.Errorf("combined occurrence = %q, want A* and B*", s)
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := ParseDTD("<!ELEMENT X - -\n  (GHOST)>")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line < 1 || pe.Msg == "" {
		t.Errorf("bad position info: %+v", pe)
	}
}
