// Package sgml implements the structured-document substrate: a DTD
// parser with full content models, Glushkov-style content-model
// automata, and an SGML document parser that infers omitted end tags
// from the DTD (OMITTAG minimization) — the behaviour the paper's
// MMF fragment relies on (<PARA> elements without </PARA>).
//
// The subset covers what 1990s document applications used:
// <!ELEMENT> with omission indicators and the (,) (|) sequence and
// choice connectors with ?, *, + occurrence indicators, #PCDATA,
// EMPTY and ANY declared content, and <!ATTLIST> with CDATA, NUMBER,
// name-token groups, #REQUIRED, #IMPLIED and literal defaults.
// Parameter entities and the & connector are intentionally out of
// scope and reported as parse errors.
package sgml

import (
	"fmt"
	"sort"
	"strings"
)

// DTD is a parsed document type definition.
type DTD struct {
	// Name of the document type (the root element); set from the
	// first declared element unless the DTD text carried a
	// <!DOCTYPE ...> or the caller overrides it.
	Name     string
	Elements map[string]*ElementDecl
	order    []string
}

// ElementNames returns the declared element names in declaration
// order.
func (d *DTD) ElementNames() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// Element returns the declaration for name (case-insensitive, SGML
// names fold to upper case).
func (d *DTD) Element(name string) (*ElementDecl, bool) {
	e, ok := d.Elements[foldName(name)]
	return e, ok
}

// DeclaredContent classifies an element's content.
type DeclaredContent uint8

// Declared content classes.
const (
	ContentModel DeclaredContent = iota // explicit content model
	ContentEmpty                        // EMPTY
	ContentAny                          // ANY
	ContentCData                        // CDATA (raw text)
)

// ElementDecl is one <!ELEMENT> declaration.
type ElementDecl struct {
	Name      string
	OmitStart bool // 'O' start-tag omission indicator
	OmitEnd   bool // 'O' end-tag omission indicator
	Declared  DeclaredContent
	Model     *CM // content model when Declared == ContentModel
	Attlist   []AttDef

	automaton *cmAutomaton // compiled lazily
}

// HasPCData reports whether the element may directly contain text.
func (e *ElementDecl) HasPCData() bool {
	switch e.Declared {
	case ContentCData:
		return true
	case ContentAny:
		return true
	case ContentModel:
		return cmHasPCData(e.Model)
	}
	return false
}

func cmHasPCData(m *CM) bool {
	if m == nil {
		return false
	}
	if m.Kind == CMPCData {
		return true
	}
	for _, c := range m.Children {
		if cmHasPCData(c) {
			return true
		}
	}
	return false
}

// AttDef is one attribute definition from an <!ATTLIST>.
type AttDef struct {
	Name     string
	Type     string   // "CDATA", "NUMBER", "NAME", "ID", or "ENUM"
	Enum     []string // allowed tokens for enumerated types
	Required bool
	Implied  bool
	Default  string // literal default (valid when !Required && !Implied)
}

// Att returns the definition of attribute name on e.
func (e *ElementDecl) Att(name string) (*AttDef, bool) {
	name = foldName(name)
	for i := range e.Attlist {
		if e.Attlist[i].Name == name {
			return &e.Attlist[i], true
		}
	}
	return nil, false
}

// CMKind enumerates content-model node kinds.
type CMKind uint8

// Content-model node kinds.
const (
	CMName   CMKind = iota // element name token
	CMPCData               // #PCDATA
	CMSeq                  // a, b, c
	CMChoice               // a | b | c
)

// CM is a content-model expression node with an occurrence
// indicator.
type CM struct {
	Kind     CMKind
	Name     string // CMName
	Children []*CM
	Occ      byte // 0, '?', '*' or '+'
}

// String renders the model in DTD syntax.
func (m *CM) String() string {
	if m == nil {
		return ""
	}
	var body string
	switch m.Kind {
	case CMName:
		body = m.Name
	case CMPCData:
		body = "#PCDATA"
	case CMSeq, CMChoice:
		sep := ", "
		if m.Kind == CMChoice {
			sep = " | "
		}
		parts := make([]string, len(m.Children))
		for i, c := range m.Children {
			parts[i] = c.String()
		}
		body = "(" + strings.Join(parts, sep) + ")"
	}
	if m.Occ != 0 {
		body += string(m.Occ)
	}
	return body
}

// ParseError reports a syntax error with position information.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sgml: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// foldName normalizes an SGML name (names are case-insensitive; the
// reference concrete syntax folds to upper case).
func foldName(s string) string { return strings.ToUpper(s) }

// ParseDTD parses DTD text.
func ParseDTD(src string) (*DTD, error) {
	p := &dtdParser{lx: newLexer(src)}
	d := &DTD{Elements: make(map[string]*ElementDecl)}
	for {
		p.lx.skipSpaceAndComments()
		if p.lx.eof() {
			break
		}
		if !p.lx.consume("<!") {
			return nil, p.lx.errf("expected declaration, got %q", p.lx.peekContext())
		}
		kw := p.lx.readName()
		switch foldName(kw) {
		case "ELEMENT":
			if err := p.parseElement(d); err != nil {
				return nil, err
			}
		case "ATTLIST":
			if err := p.parseAttlist(d); err != nil {
				return nil, err
			}
		case "DOCTYPE":
			// <!DOCTYPE name [ ... ]> — read the name, then recurse
			// into the internal subset if present.
			p.lx.skipSpaceAndComments()
			d.Name = foldName(p.lx.readName())
			p.lx.skipSpaceAndComments()
			if p.lx.consume("[") {
				continue // declarations follow; closing ]> handled below
			}
			if !p.lx.consume(">") {
				return nil, p.lx.errf("unterminated DOCTYPE")
			}
		case "ENTITY", "NOTATION", "SHORTREF", "USEMAP":
			// Tolerated but ignored: skip to '>'.
			if !p.lx.skipTo('>') {
				return nil, p.lx.errf("unterminated <!%s", kw)
			}
		default:
			return nil, p.lx.errf("unsupported declaration <!%s", kw)
		}
		p.lx.skipSpaceAndComments()
		if p.lx.consume("]>") || p.lx.consume("]") {
			// end of internal subset
			p.lx.consume(">")
		}
	}
	if len(d.Elements) == 0 {
		return nil, &ParseError{Line: 1, Col: 1, Msg: "DTD declares no elements"}
	}
	if d.Name == "" {
		d.Name = d.order[0]
	}
	// Every name referenced in a content model should be declared;
	// report the first orphan for early failure.
	for _, name := range d.order {
		decl := d.Elements[name]
		if decl.Declared != ContentModel {
			continue
		}
		if orphan := firstUndeclared(decl.Model, d.Elements); orphan != "" {
			return nil, &ParseError{Line: 1, Col: 1,
				Msg: fmt.Sprintf("element %s references undeclared element %s", name, orphan)}
		}
	}
	return d, nil
}

func firstUndeclared(m *CM, decls map[string]*ElementDecl) string {
	if m == nil {
		return ""
	}
	if m.Kind == CMName {
		if _, ok := decls[m.Name]; !ok {
			return m.Name
		}
		return ""
	}
	for _, c := range m.Children {
		if orphan := firstUndeclared(c, decls); orphan != "" {
			return orphan
		}
	}
	return ""
}

type dtdParser struct {
	lx *lexer
}

// parseElement parses the remainder of an <!ELEMENT ...> declaration
// (the keyword is already consumed). Name groups declare several
// elements at once: <!ELEMENT (A|B) - - (#PCDATA)>.
func (p *dtdParser) parseElement(d *DTD) error {
	lx := p.lx
	lx.skipSpaceAndComments()
	var names []string
	if lx.consume("(") {
		for {
			lx.skipSpaceAndComments()
			n := lx.readName()
			if n == "" {
				return lx.errf("expected element name in name group")
			}
			names = append(names, foldName(n))
			lx.skipSpaceAndComments()
			if lx.consume("|") {
				continue
			}
			if lx.consume(")") {
				break
			}
			return lx.errf("malformed name group")
		}
	} else {
		n := lx.readName()
		if n == "" {
			return lx.errf("expected element name")
		}
		names = []string{foldName(n)}
	}

	// Omission indicators are optional ("- -", "- O", "O O").
	omitStart, omitEnd := false, false
	hasOmission := false
	lx.skipSpaceAndComments()
	if c, ok := lx.peekByte(); ok && (c == '-' || c == 'O' || c == 'o') {
		// Lookahead: an omission indicator is a single '-'/'O'
		// followed by whitespace.
		if ind, ok := lx.readOmissionIndicator(); ok {
			omitStart = ind
			lx.skipSpaceAndComments()
			ind2, ok2 := lx.readOmissionIndicator()
			if !ok2 {
				return lx.errf("expected second omission indicator")
			}
			omitEnd = ind2
			hasOmission = true
		}
	}
	_ = hasOmission

	lx.skipSpaceAndComments()
	decl := &ElementDecl{OmitStart: omitStart, OmitEnd: omitEnd}
	switch {
	case lx.consumeWord("EMPTY"):
		decl.Declared = ContentEmpty
	case lx.consumeWord("ANY"):
		decl.Declared = ContentAny
	case lx.consumeWord("CDATA"):
		decl.Declared = ContentCData
	default:
		m, err := p.parseModelGroup()
		if err != nil {
			return err
		}
		decl.Declared = ContentModel
		decl.Model = m
	}
	lx.skipSpaceAndComments()
	// Inclusion/exclusion exceptions (+(X) / -(X)) are not
	// supported; reject explicitly rather than silently.
	if c, ok := lx.peekByte(); ok && (c == '+' || c == '-') {
		return lx.errf("inclusion/exclusion exceptions are not supported")
	}
	if !lx.consume(">") {
		return lx.errf("unterminated <!ELEMENT")
	}
	for _, n := range names {
		if _, dup := d.Elements[n]; dup {
			return lx.errf("element %s declared twice", n)
		}
		ed := *decl // copy per name
		ed.Name = n
		d.Elements[n] = &ed
		d.order = append(d.order, n)
	}
	return nil
}

// parseModelGroup parses "( ... )" with connectors and occurrence
// indicators, or a single token.
func (p *dtdParser) parseModelGroup() (*CM, error) {
	lx := p.lx
	lx.skipSpaceAndComments()
	if !lx.consume("(") {
		// single token model like "CDATA" handled by caller; a bare
		// name is legal in some DTDs.
		n := lx.readName()
		if n == "" {
			return nil, lx.errf("expected content model")
		}
		m := &CM{Kind: CMName, Name: foldName(n)}
		m.Occ = lx.readOcc()
		return m, nil
	}
	var children []*CM
	var connector byte // ',', '|' once established
	for {
		lx.skipSpaceAndComments()
		var child *CM
		switch {
		case lx.consume("#PCDATA"):
			child = &CM{Kind: CMPCData}
		case lx.peekIs('('):
			sub, err := p.parseModelGroup()
			if err != nil {
				return nil, err
			}
			child = sub
		default:
			n := lx.readName()
			if n == "" {
				return nil, lx.errf("expected token in model group")
			}
			child = &CM{Kind: CMName, Name: foldName(n)}
			child.Occ = lx.readOcc()
		}
		children = append(children, child)
		lx.skipSpaceAndComments()
		c, ok := lx.peekByte()
		if !ok {
			return nil, lx.errf("unterminated model group")
		}
		switch c {
		case ',', '|':
			if connector != 0 && connector != c {
				return nil, lx.errf("mixed connectors in model group")
			}
			if c == '&' {
				return nil, lx.errf("the & connector is not supported")
			}
			connector = c
			lx.advance(1)
			continue
		case '&':
			return nil, lx.errf("the & connector is not supported")
		case ')':
			lx.advance(1)
			kind := CMSeq
			if connector == '|' {
				kind = CMChoice
			}
			m := &CM{Kind: kind, Children: children}
			if len(children) == 1 {
				// collapse single-child group but keep its occurrence
				m = children[0]
				inner := m.Occ
				outer := lx.readOcc()
				m.Occ = combineOcc(inner, outer)
				return m, nil
			}
			m.Occ = lx.readOcc()
			return m, nil
		default:
			return nil, lx.errf("unexpected %q in model group", string(c))
		}
	}
}

// combineOcc merges nested occurrence indicators, e.g. (a+)? == a*.
func combineOcc(inner, outer byte) byte {
	if inner == 0 {
		return outer
	}
	if outer == 0 {
		return inner
	}
	if inner == outer {
		return inner
	}
	// Any mix of distinct non-zero indicators allows both zero and
	// many.
	return '*'
}

// parseAttlist parses the remainder of an <!ATTLIST ...>.
func (p *dtdParser) parseAttlist(d *DTD) error {
	lx := p.lx
	lx.skipSpaceAndComments()
	var names []string
	if lx.consume("(") {
		for {
			lx.skipSpaceAndComments()
			n := lx.readName()
			if n == "" {
				return lx.errf("expected element name in attlist name group")
			}
			names = append(names, foldName(n))
			lx.skipSpaceAndComments()
			if lx.consume("|") {
				continue
			}
			if lx.consume(")") {
				break
			}
			return lx.errf("malformed attlist name group")
		}
	} else {
		n := lx.readName()
		if n == "" {
			return lx.errf("expected element name after <!ATTLIST")
		}
		names = []string{foldName(n)}
	}
	var defs []AttDef
	for {
		lx.skipSpaceAndComments()
		if lx.consume(">") {
			break
		}
		attName := lx.readName()
		if attName == "" {
			return lx.errf("expected attribute name")
		}
		def := AttDef{Name: foldName(attName)}
		lx.skipSpaceAndComments()
		switch {
		case lx.consumeWord("CDATA"):
			def.Type = "CDATA"
		case lx.consumeWord("NUMBER"):
			def.Type = "NUMBER"
		case lx.consumeWord("NAME"):
			def.Type = "NAME"
		case lx.consumeWord("ID"):
			def.Type = "ID"
		case lx.consumeWord("NMTOKEN"):
			def.Type = "NAME"
		case lx.peekIs('('):
			lx.advance(1)
			def.Type = "ENUM"
			for {
				lx.skipSpaceAndComments()
				tok := lx.readName()
				if tok == "" {
					return lx.errf("expected token in enumerated attribute type")
				}
				def.Enum = append(def.Enum, foldName(tok))
				lx.skipSpaceAndComments()
				if lx.consume("|") {
					continue
				}
				if lx.consume(")") {
					break
				}
				return lx.errf("malformed enumerated attribute type")
			}
		default:
			return lx.errf("unsupported attribute type %q", lx.peekContext())
		}
		lx.skipSpaceAndComments()
		switch {
		case lx.consume("#REQUIRED"):
			def.Required = true
		case lx.consume("#IMPLIED"):
			def.Implied = true
		case lx.consume("#FIXED"):
			lx.skipSpaceAndComments()
			lit, err := lx.readLiteral()
			if err != nil {
				return err
			}
			def.Default = lit
		default:
			lit, err := lx.readLiteral()
			if err != nil {
				return err
			}
			def.Default = lit
		}
		defs = append(defs, def)
	}
	for _, n := range names {
		decl, ok := d.Elements[n]
		if !ok {
			return lx.errf("ATTLIST for undeclared element %s", n)
		}
		decl.Attlist = append(decl.Attlist, defs...)
	}
	return nil
}

// sortedAttNames is a helper for deterministic rendering.
func sortedAttNames(m map[string]string) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
