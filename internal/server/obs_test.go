package server

import (
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/obs"
)

// getText fetches a URL and returns the raw body (the /metrics
// exposition is text, not JSON).
func getText(t testing.TB, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, raw)
	}
	return string(raw)
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := fixture(t, Config{})
	seed(t, ts, 4)
	// One limited search (top-k path, records stage histograms) and
	// one query, so both request kinds have latency samples.
	mustOK(t, "GET", ts.URL+"/collections/collPara/search?q=www&limit=2", nil)
	mustOK(t, "POST", ts.URL+"/query", map[string]any{
		"query": `ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'www') > 0.45;`,
	})

	text := getText(t, ts.URL+"/metrics")
	samples, types, err := obs.ParsePrometheusText(text)
	if err != nil {
		t.Fatalf("/metrics is not valid exposition text: %v\n%s", err, text)
	}
	if err := obs.ValidatePromHistograms(samples, types); err != nil {
		t.Fatalf("histogram invariants: %v\n%s", err, text)
	}
	if types["mmf_requests_total"] != "counter" ||
		types["mmf_inflight_requests"] != "gauge" ||
		types["mmf_http_request_seconds"] != "histogram" {
		t.Fatalf("missing TYPE declarations: %v", types)
	}

	var searchReq, searchCount, stageSeed float64
	for _, sm := range samples {
		switch sm.Name {
		case "mmf_requests_total":
			if sm.Labels["kind"] == "search" {
				searchReq = sm.Value
			}
		case "mmf_http_request_seconds_count":
			if sm.Labels["endpoint"] == "search" {
				searchCount = sm.Value
			}
		case "mmf_stage_seconds_count":
			if sm.Labels["stage"] == "topk_seed" {
				stageSeed = sm.Value
			}
		}
	}
	if searchReq < 1 {
		t.Errorf("mmf_requests_total{kind=search} = %v, want >= 1", searchReq)
	}
	if searchCount < 1 {
		t.Errorf("mmf_http_request_seconds{endpoint=search} count = %v, want >= 1", searchCount)
	}
	if stageSeed < 1 {
		t.Errorf("mmf_stage_seconds{stage=topk_seed} count = %v, want >= 1", stageSeed)
	}
}

func TestSlowlogEndpoint(t *testing.T) {
	// A one-nanosecond threshold admits every trace, so the endpoints
	// exercised below must show up.
	_, ts := fixture(t, Config{SlowQueryThreshold: time.Nanosecond, SlowLogSize: 16})
	seed(t, ts, 2)
	mustOK(t, "GET", ts.URL+"/collections/collPara/search?q=www&limit=2", nil)

	out := mustOK(t, "GET", ts.URL+"/debug/slowlog", nil)
	if out["count"].(float64) < 1 {
		t.Fatalf("slowlog retained no traces: %v", out)
	}
	traces := out["traces"].([]any)
	var sawSearch bool
	for _, v := range traces {
		rec := v.(map[string]any)
		if rec["op"] == "search" {
			sawSearch = true
			spans := rec["spans"].([]any)
			names := map[string]bool{}
			for _, sp := range spans {
				names[sp.(map[string]any)["name"].(string)] = true
			}
			for _, want := range []string{"queue_wait", "topk_seed", "topk_merge"} {
				if !names[want] {
					t.Errorf("search trace missing %q span: %v", want, names)
				}
			}
			attrs := map[string]any{}
			for _, a := range rec["attrs"].([]any) {
				am := a.(map[string]any)
				attrs[am["key"].(string)] = am["val"]
			}
			if attrs["collection"] != "collPara" {
				t.Errorf("search trace attrs = %v, want collection=collPara", attrs)
			}
			if attrs["cache"] != "miss" && attrs["cache"] != "hit" {
				t.Errorf("search trace has no cache attr: %v", attrs)
			}
		}
	}
	if !sawSearch {
		t.Fatalf("no search trace in slowlog: %v", out)
	}

	// ?n= bounds the response.
	one := mustOK(t, "GET", ts.URL+"/debug/slowlog?n=1", nil)
	if got := len(one["traces"].([]any)); got != 1 {
		t.Fatalf("slowlog?n=1 returned %d traces", got)
	}
	if status, _ := call(t, "GET", ts.URL+"/debug/slowlog?n=zero", nil); status != http.StatusBadRequest {
		t.Fatalf("bad n answered %d, want 400", status)
	}
}

func TestStatsLatencySection(t *testing.T) {
	_, ts := fixture(t, Config{})
	seed(t, ts, 2)
	mustOK(t, "GET", ts.URL+"/collections/collPara/search?q=www&limit=2", nil)
	stats := mustOK(t, "GET", ts.URL+"/stats", nil)
	lat, ok := stats["latency"].(map[string]any)
	if !ok {
		t.Fatalf("stats has no latency section: %v", stats)
	}
	series, ok := lat[`mmf_http_request_seconds{endpoint="search"}`].(map[string]any)
	if !ok {
		t.Fatalf("latency section missing search endpoint: %v", lat)
	}
	if series["count"].(float64) < 1 {
		t.Fatalf("search latency summary empty: %v", series)
	}
	if _, ok := stats["slowlog"].(map[string]any); !ok {
		t.Fatalf("stats has no slowlog section: %v", stats)
	}
}
