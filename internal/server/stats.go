package server

import (
	"sync"
	"sync/atomic"
	"time"
)

// counters holds the expvar-style service counters; every field is
// maintained with atomic operations and published by /stats.
type counters struct {
	queries     atomic.Int64 // VQL query evaluations served
	searches    atomic.Int64 // raw IRS searches served
	ingests     atomic.Int64 // documents ingested
	edits       atomic.Int64 // text edits + deletes applied
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	rejected    atomic.Int64 // admission rejections (503)
	errored     atomic.Int64 // requests answered with 4xx/5xx bodies
	inflight    atomic.Int64 // currently admitted requests

	asyncIngests  atomic.Int64 // documents accepted in async-ingest mode
	backpressured atomic.Int64 // async ingests shed because a pending queue was full
	drains        atomic.Int64 // explicit drain requests served
}

// rateWindow measures request rate over a sliding window of
// per-second buckets (a cheap stand-in for a metrics library, which
// the container deliberately does without).
type rateWindow struct {
	mu      sync.Mutex
	buckets [ratesBuckets]int64
	stamps  [ratesBuckets]int64 // unix second each bucket last counted
}

const (
	ratesBuckets = 64
	rateSpan     = 10 // seconds averaged by rate()
)

func newRateWindow() *rateWindow { return &rateWindow{} }

// record counts one event in the current second's bucket.
func (w *rateWindow) record() {
	now := time.Now().Unix()
	i := now % ratesBuckets
	w.mu.Lock()
	if w.stamps[i] != now {
		w.stamps[i] = now
		w.buckets[i] = 0
	}
	w.buckets[i]++
	w.mu.Unlock()
}

// rate returns events/second averaged over the last rateSpan full
// seconds (the current, partially filled second is excluded).
func (w *rateWindow) rate() float64 {
	now := time.Now().Unix()
	var sum int64
	w.mu.Lock()
	for sec := now - rateSpan; sec < now; sec++ {
		i := sec % ratesBuckets
		if w.stamps[i] == sec {
			sum += w.buckets[i]
		}
	}
	w.mu.Unlock()
	return float64(sum) / rateSpan
}
