package server

import (
	"sync/atomic"
)

// counters holds the expvar-style service counters; every field is
// maintained with atomic operations and published by /stats and
// /metrics. Latency distributions live in the process-wide obs
// registry (internal/obs), not here — the hand-rolled sliding-window
// rate bucketing this file used to carry is obs.Rate now.
type counters struct {
	queries     atomic.Int64 // VQL query evaluations served
	searches    atomic.Int64 // raw IRS searches served
	ingests     atomic.Int64 // documents ingested
	edits       atomic.Int64 // text edits + deletes applied
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	rejected    atomic.Int64 // admission rejections (503)
	errored     atomic.Int64 // requests answered with 4xx/5xx bodies
	inflight    atomic.Int64 // currently admitted requests

	asyncIngests  atomic.Int64 // documents accepted in async-ingest mode
	backpressured atomic.Int64 // async ingests shed because a pending queue was full
	drains        atomic.Int64 // explicit drain requests served
}
