package server

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentMixedWorkload is the end-to-end concurrency test for
// the serving layer: reader goroutines issue VQL queries and raw IRS
// searches over HTTP while writer goroutines ingest documents, edit
// text leaves and force propagation flushes. Run under -race this
// exercises the locked paths in docirs.System, internal/core and
// internal/irs simultaneously with the server's cache and admission
// machinery. Every response must be a success or — by design — a
// clean 503 from the admission layer; anything else fails the test.
func TestConcurrentMixedWorkload(t *testing.T) {
	_, ts := fixture(t, Config{MaxConcurrent: 8, CacheSize: 256})
	seed(t, ts, 4)

	// A pool of text-leaf OIDs for the editors to rewrite.
	leavesOut := mustOK(t, "POST", ts.URL+"/query", map[string]any{
		"query": "ACCESS t FROM t IN Text;",
	})
	var leaves []string
	for _, row := range leavesOut["rows"].([]any) {
		leaves = append(leaves, row.([]any)[0].(string))
	}
	if len(leaves) == 0 {
		t.Fatal("no text leaves to edit")
	}

	const (
		readers   = 8
		writers   = 3
		perWorker = 25
	)
	queries := []any{
		map[string]any{"query": `ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'www') > 0.45;`},
		map[string]any{"query": `ACCESS p FROM p IN PARA;`, "strategy": "independent"},
		map[string]any{"query": `ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'markup') > 0.3;`, "strategy": "irs-first"},
	}
	searches := []string{"www", "%23and(www%20markup)", "sgml"}

	var (
		wg       sync.WaitGroup
		failures atomic.Int64
		overload atomic.Int64
	)
	check := func(kind string, status int, out map[string]any) {
		switch {
		case status >= 200 && status <= 299:
		case status == http.StatusServiceUnavailable:
			overload.Add(1)
		default:
			failures.Add(1)
			t.Errorf("%s: status %d: %v", kind, status, out["error"])
		}
	}

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if i%2 == 0 {
					status, out := call(t, "POST", ts.URL+"/query", queries[(g+i)%len(queries)])
					check("query", status, out)
				} else {
					q := searches[(g+i)%len(searches)]
					status, out := call(t, "GET", ts.URL+"/collections/collPara/search?q="+q, nil)
					check("search", status, out)
				}
			}
		}(g)
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				switch i % 3 {
				case 0:
					status, out := call(t, "POST", ts.URL+"/documents", map[string]any{
						"dtd":       "mmf",
						"documents": []string{testDoc(1000*g+i, "fresh www content")},
					})
					check("ingest", status, out)
				case 1:
					leaf := leaves[(g*perWorker+i)%len(leaves)]
					status, out := call(t, "PUT", ts.URL+"/documents/"+leaf+"/text", map[string]any{
						"text": fmt.Sprintf("edited %d-%d www markup", g, i),
					})
					check("edit", status, out)
				case 2:
					status, out := call(t, "POST", ts.URL+"/collections/collPara/flush", nil)
					check("flush", status, out)
				}
			}
		}(g)
	}
	wg.Wait()

	if n := failures.Load(); n > 0 {
		t.Fatalf("%d requests failed", n)
	}
	// The system must still answer coherently after the storm.
	stats := mustOK(t, "GET", ts.URL+"/stats", nil)
	if stats["queries"].(float64) < readers*perWorker/2 {
		t.Fatalf("stats lost queries: %v", stats["queries"])
	}
	final := mustOK(t, "GET", ts.URL+"/collections/collPara/search?q=www", nil)
	if int(final["count"].(float64)) == 0 {
		t.Fatal("post-storm search found nothing; index lost documents")
	}
	t.Logf("storm done: %v queries, %v searches, %d overloads, cache %v",
		stats["queries"], stats["searches"], overload.Load(), stats["cache"])
}
