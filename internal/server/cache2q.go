package server

import (
	"container/heap"
	"container/list"
	"sync"
	"time"
)

// Cache policy names accepted by Config.CachePolicy and
// Server.SetCachePolicy.
const (
	CachePolicyLRU = "lru"
	CachePolicy2Q  = "2q"
)

// costCache is the cost-aware 2Q cache: admission through a
// probationary FIFO, a ghost list of recently evicted keys, and a
// main segment ranked by frequency-and-cost-weighted value (GDSF)
// instead of pure recency.
//
// The structure answers the two ways the plain LRU loses at serving
// scale. One-shot scans — crawler traffic, epoch churn minting a new
// key per mutation — enter the probationary FIFO and leave through
// its tail without ever touching the main segment, so they cannot
// flush the hot set. And among hot entries, eviction prefers to keep
// what is expensive to rebuild: each entry carries the measured cost
// of its miss-path evaluation (stage latency × candidates scored,
// from the request trace), and the victim is always the lowest
// priority = inflation + freq × cost. The inflation term is GDSF
// aging: it rises to each victim's priority, so entries that stopped
// being referenced eventually fall below fresh admissions no matter
// how expensive they once were.
//
// A key re-referenced shortly after leaving probation (or main) is
// remembered by the ghost list — key only, no value — and readmitted
// directly into the main segment: that second reference within the
// ghost horizon is 2Q's evidence of genuine reuse.
type costCache struct {
	mu  sync.Mutex
	cap int // total value-carrying entries (probation + main)
	ttl time.Duration
	now func() time.Time

	probCap  int // probationary FIFO budget (~cap/4)
	mainCap  int // main segment budget (cap - probCap)
	ghostCap int // remembered evicted keys (~cap, ARC-style), values long gone

	prob     *list.List // FIFO of *costEntry; front = newest
	probIdx  map[cacheKey]*list.Element
	ghost    *list.List // FIFO of cacheKey; front = newest
	ghostIdx map[cacheKey]*list.Element
	main     costHeap // min-heap on prio: root = next victim
	mainIdx  map[cacheKey]*costEntry

	// inflation is the GDSF aging floor: the priority of the last
	// main-segment victim. New and re-scored priorities build on it,
	// so long-unreferenced entries age out relative to fresh traffic.
	inflation float64

	probSweep *list.Element // TTL cursor over probation
	mainSweep int           // TTL cursor over the main heap slice

	m cacheCounters
}

type costEntry struct {
	key     cacheKey
	val     any
	cost    float64
	freq    int64
	prio    float64 // inflation + freq × cost, frozen at last touch
	idx     int     // heap index in main; -1 while in probation
	expires time.Time
}

// costHeap is a min-heap of main-segment entries by priority.
type costHeap []*costEntry

func (h costHeap) Len() int           { return len(h) }
func (h costHeap) Less(i, j int) bool { return h[i].prio < h[j].prio }
func (h costHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *costHeap) Push(x any)        { e := x.(*costEntry); e.idx = len(*h); *h = append(*h, e) }
func (h *costHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

func newCostCache(capacity int, ttl time.Duration) *costCache {
	probCap := capacity / 4
	if probCap < 1 {
		probCap = 1
	}
	mainCap := capacity - probCap
	if mainCap < 1 {
		mainCap = 1
	}
	// Ghost keys are ~100 bytes each (no result values), so one full
	// extra capacity of history — the ARC sizing — costs next to
	// nothing. Longer horizons measure worse on zipfian streams: they
	// readmit tail queries straight into the main segment on their
	// second-ever reference, churning out genuinely hot entries.
	ghostCap := capacity
	if ghostCap < 2 {
		ghostCap = 2
	}
	return &costCache{
		cap: capacity, ttl: ttl, now: time.Now,
		probCap: probCap, mainCap: mainCap, ghostCap: ghostCap,
		prob: list.New(), probIdx: make(map[cacheKey]*list.Element),
		ghost: list.New(), ghostIdx: make(map[cacheKey]*list.Element),
		mainIdx: make(map[cacheKey]*costEntry),
	}
}

func (c *costCache) get(k cacheKey) (any, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	if e, ok := c.mainIdx[k]; ok {
		if expired(e, now) {
			c.removeMain(e)
			c.m.missesExpired++
			return nil, false
		}
		e.freq++
		e.prio = c.inflation + float64(e.freq)*e.cost
		heap.Fix(&c.main, e.idx)
		c.m.hitsMain++
		return e.val, true
	}
	if el, ok := c.probIdx[k]; ok {
		e := el.Value.(*costEntry)
		if expired(e, now) {
			c.removeProb(el)
			c.m.missesExpired++
			return nil, false
		}
		// First re-reference: the entry earned its way out of
		// probation into the cost-ranked main segment.
		c.removeProb(el)
		e.freq++
		c.admitMain(e)
		c.m.promotions++
		c.m.hitsProbation++
		return e.val, true
	}
	c.m.missesCold++
	return nil, false
}

func (c *costCache) put(k cacheKey, v any, cost float64) {
	if c.cap <= 0 {
		return
	}
	if cost <= 0 {
		cost = 1e-9 // degrade to frequency-only ranking, never 0
	}
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.sweepExpired()
	if e, ok := c.mainIdx[k]; ok {
		e.val, e.cost, e.expires = v, cost, expires
		e.prio = c.inflation + float64(e.freq)*e.cost
		heap.Fix(&c.main, e.idx)
		return
	}
	if el, ok := c.probIdx[k]; ok {
		e := el.Value.(*costEntry)
		e.val, e.cost, e.expires = v, cost, expires
		return
	}
	e := &costEntry{key: k, val: v, cost: cost, freq: 1, idx: -1, expires: expires}
	if gel, ok := c.ghostIdx[k]; ok {
		// Second reference within the ghost horizon: skip probation,
		// this key has proven reuse.
		c.ghost.Remove(gel)
		delete(c.ghostIdx, k)
		e.freq = 2
		c.admitMain(e)
		c.m.ghostReadmits++
		return
	}
	c.probIdx[k] = c.prob.PushFront(e)
	for c.prob.Len() > c.probCap {
		tail := c.prob.Back()
		dead := tail.Value.(*costEntry)
		c.removeProb(tail)
		// Never re-referenced while on probation: the value is
		// dropped (admission to the main segment rejected) and only
		// the key is remembered in the ghost list.
		c.remember(dead.key)
		c.m.admissionRejects++
		c.m.evictedCost += dead.cost
	}
}

// admitMain inserts e into the main segment, evicting the lowest
// priority entries while over budget and raising the aging floor to
// each victim's priority. Caller holds c.mu.
func (c *costCache) admitMain(e *costEntry) {
	e.prio = c.inflation + float64(e.freq)*e.cost
	heap.Push(&c.main, e)
	c.mainIdx[e.key] = e
	for len(c.main) > c.mainCap {
		victim := heap.Pop(&c.main).(*costEntry)
		delete(c.mainIdx, victim.key)
		c.inflation = victim.prio
		c.remember(victim.key)
		c.m.evictions++
		c.m.evictedCost += victim.cost
	}
}

// remember pushes a key onto the ghost list, trimming to ghostCap.
func (c *costCache) remember(k cacheKey) {
	if _, ok := c.ghostIdx[k]; ok {
		return
	}
	c.ghostIdx[k] = c.ghost.PushFront(k)
	for c.ghost.Len() > c.ghostCap {
		tail := c.ghost.Back()
		delete(c.ghostIdx, tail.Value.(cacheKey))
		c.ghost.Remove(tail)
	}
}

func (c *costCache) removeProb(el *list.Element) {
	if c.probSweep == el {
		c.probSweep = el.Prev()
	}
	c.prob.Remove(el)
	delete(c.probIdx, el.Value.(*costEntry).key)
}

func (c *costCache) removeMain(e *costEntry) {
	heap.Remove(&c.main, e.idx)
	delete(c.mainIdx, e.key)
}

func expired(e *costEntry, now time.Time) bool {
	return !e.expires.IsZero() && now.After(e.expires)
}

// sweepExpired reclaims TTL-expired entries from both segments under
// a fixed probe budget, piggybacked on every put (see
// queryCache.sweepExpired for why: expired cold keys must release
// their values without ever being read again). Probation is walked
// with a persistent cursor from the tail; the main heap's slice is
// scanned round-robin by index. Caller holds c.mu.
func (c *costCache) sweepExpired() {
	if c.ttl <= 0 {
		return
	}
	now := c.now()
	budget := sweepBudget
	el := c.probSweep
	if el == nil {
		el = c.prob.Back()
	}
	for ; budget > 0 && el != nil; budget-- {
		prev := el.Prev()
		if e := el.Value.(*costEntry); expired(e, now) {
			c.removeProb(el)
			c.m.sweptExpired++
		}
		el = prev
	}
	c.probSweep = el
	for ; budget > 0 && len(c.main) > 0; budget-- {
		if c.mainSweep >= len(c.main) {
			c.mainSweep = 0
		}
		if e := c.main[c.mainSweep]; expired(e, now) {
			c.removeMain(e) // heap.Remove refills the slot; re-examine it
			c.m.sweptExpired++
		} else {
			c.mainSweep++
		}
	}
}

func (c *costCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.prob.Len() + len(c.main)
}

func (c *costCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.prob.Init()
	c.probIdx = make(map[cacheKey]*list.Element)
	c.ghost.Init()
	c.ghostIdx = make(map[cacheKey]*list.Element)
	c.main = nil
	c.mainIdx = make(map[cacheKey]*costEntry)
	c.inflation = 0
	c.probSweep, c.mainSweep = nil, 0
}

func (c *costCache) metrics() CacheMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.snapshot(CachePolicy2Q, c.prob.Len()+len(c.main), c.cap)
}
