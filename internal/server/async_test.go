package server

import (
	"net/http/httptest"
	"testing"
	"time"
)

// asyncSeed registers the DTD and creates collPara under the async
// propagation policy (before any documents, so every ingest below
// flows through the pipeline).
func asyncSeed(t testing.TB, ts *httptest.Server) {
	t.Helper()
	mustOK(t, "POST", ts.URL+"/dtds", map[string]any{"name": "mmf", "dtd": testDTD})
	mustOK(t, "POST", ts.URL+"/collections", map[string]any{
		"name": "collPara", "spec": "ACCESS p FROM p IN PARA;", "policy": "async",
	})
}

// TestAsyncIngestAndDrain: mode=async answers 202 with the batch's
// watermark; /drain is the visibility barrier after which the
// documents rank.
func TestAsyncIngestAndDrain(t *testing.T) {
	// A far-away coalescing window keeps the background flusher out
	// of the picture, so the test controls visibility explicitly.
	_, ts := fixture(t, Config{AsyncCoalesce: time.Hour})
	asyncSeed(t, ts)

	status, out := call(t, "POST", ts.URL+"/documents", map[string]any{
		"dtd": "mmf", "mode": "async",
		"documents": []string{testDoc(1, "asynchronous pipelines"), testDoc(2, "group commits")},
	})
	if status != 202 {
		t.Fatalf("async ingest status = %d: %v", status, out)
	}
	wms, ok := out["watermarks"].(map[string]any)
	if !ok {
		t.Fatalf("202 response missing watermarks: %v", out)
	}
	wm, ok := wms["collPara"].(map[string]any)
	if !ok || wm["watermark"].(float64) <= 0 {
		t.Fatalf("collPara watermark missing/zero: %v", wms)
	}

	drained := mustOK(t, "POST", ts.URL+"/collections/collPara/drain", nil)
	if got := drained["applied_watermark"].(float64); got < wm["watermark"].(float64) {
		t.Fatalf("applied watermark %v below ingest watermark %v", got, wm["watermark"])
	}
	res := mustOK(t, "GET", ts.URL+"/collections/collPara/search?q=asynchronous", nil)
	if res["count"].(float64) == 0 {
		t.Fatalf("drained document not ranked: %v", res)
	}
}

// TestAsyncIngestBackpressure: a full pending queue sheds async
// ingest with 503 + Retry-After; a drain opens it up again. Sync-mode
// ingest is never shed (it makes no visibility promise).
func TestAsyncIngestBackpressure(t *testing.T) {
	srv, ts := fixture(t, Config{AsyncCoalesce: time.Hour, AsyncMaxPending: 1})
	asyncSeed(t, ts)

	status, out := call(t, "POST", ts.URL+"/documents", map[string]any{
		"dtd": "mmf", "mode": "async", "documents": []string{testDoc(1, "first")},
	})
	if status != 202 {
		t.Fatalf("first async ingest = %d: %v", status, out)
	}
	status, out = call(t, "POST", ts.URL+"/documents", map[string]any{
		"dtd": "mmf", "mode": "async", "documents": []string{testDoc(2, "second")},
	})
	if status != 503 {
		t.Fatalf("saturated async ingest = %d, want 503: %v", status, out)
	}
	if got := srv.stats.backpressured.Load(); got != 1 {
		t.Errorf("backpressured = %d, want 1", got)
	}
	// Sync mode still lands (propagation is the policy's business).
	status, out = call(t, "POST", ts.URL+"/documents", map[string]any{
		"dtd": "mmf", "documents": []string{testDoc(3, "third")},
	})
	if status != 201 {
		t.Fatalf("sync ingest under backlog = %d: %v", status, out)
	}
	mustOK(t, "POST", ts.URL+"/collections/collPara/drain", nil)
	status, out = call(t, "POST", ts.URL+"/documents", map[string]any{
		"dtd": "mmf", "mode": "async", "documents": []string{testDoc(4, "fourth")},
	})
	if status != 202 {
		t.Fatalf("post-drain async ingest = %d: %v", status, out)
	}
}

// TestIngestModeValidation: unknown modes are rejected.
func TestIngestModeValidation(t *testing.T) {
	_, ts := fixture(t, Config{})
	mustOK(t, "POST", ts.URL+"/dtds", map[string]any{"name": "mmf", "dtd": testDTD})
	status, _ := call(t, "POST", ts.URL+"/documents", map[string]any{
		"dtd": "mmf", "mode": "fire-and-forget", "documents": []string{testDoc(1, "x")},
	})
	if status != 400 {
		t.Fatalf("bad mode status = %d, want 400", status)
	}
}

// TestStatsPipelineMetrics: /stats exposes the ingest-pipeline
// telemetry per collection.
func TestStatsPipelineMetrics(t *testing.T) {
	_, ts := fixture(t, Config{AsyncCoalesce: time.Millisecond})
	asyncSeed(t, ts)
	mustOK(t, "POST", ts.URL+"/documents", map[string]any{
		"dtd": "mmf", "mode": "async", "documents": []string{testDoc(1, "metrics")},
	})
	mustOK(t, "POST", ts.URL+"/collections/collPara/drain", nil)
	stats := mustOK(t, "GET", ts.URL+"/stats", nil)
	ing, ok := stats["ingest"].(map[string]any)
	if !ok || ing["async_documents"].(float64) != 1 {
		t.Fatalf("ingest section wrong: %v", stats["ingest"])
	}
	coll := stats["collections"].(map[string]any)["collPara"].(map[string]any)
	pipe, ok := coll["pipeline"].(map[string]any)
	if !ok {
		t.Fatalf("collection stats missing pipeline: %v", coll)
	}
	for _, key := range []string{
		"queue_depth", "queue_capacity", "ingest_watermark", "applied_watermark",
		"group_commits", "avg_group_size", "analyze_ms", "commit_ms",
		"flush_errors", "compactions", "tombstone_ratio",
	} {
		if _, ok := pipe[key]; !ok {
			t.Errorf("pipeline missing %q: %v", key, pipe)
		}
	}
	if pipe["group_commits"].(float64) == 0 {
		t.Error("drain committed nothing")
	}
	if pipe["applied_watermark"].(float64) < pipe["ingest_watermark"].(float64) {
		t.Errorf("applied %v < ingest %v after drain", pipe["applied_watermark"], pipe["ingest_watermark"])
	}
	if pipe["flush_errors"].(float64) != 0 {
		t.Errorf("flush errors: %v (%v)", pipe["flush_errors"], pipe["last_flush_error"])
	}
}

// TestCacheTTL: entries expire after the configured TTL (unit level —
// the endpoint path is covered by the epoch tests).
func TestCacheTTL(t *testing.T) {
	c := newQueryCache(8, 40*time.Millisecond)
	k := cacheKey{kind: "search", coll: "c", query: "q"}
	c.put(k, 1, 1)
	if v, ok := c.get(k); !ok || v != 1 {
		t.Fatalf("fresh entry missing: %v %v", v, ok)
	}
	time.Sleep(80 * time.Millisecond)
	if _, ok := c.get(k); ok {
		t.Fatal("expired entry served")
	}
	if c.len() != 0 {
		t.Fatalf("expired entry retained: len=%d", c.len())
	}
	// TTL 0 never expires.
	c2 := newQueryCache(8, 0)
	c2.put(k, 2, 1)
	time.Sleep(10 * time.Millisecond)
	if _, ok := c2.get(k); !ok {
		t.Fatal("no-TTL entry expired")
	}
}

// TestSearchCacheTTLEndToEnd: with a tiny TTL the search cache stops
// serving an entry even though the epoch stands still.
func TestSearchCacheTTLEndToEnd(t *testing.T) {
	_, ts := fixture(t, Config{CacheTTL: 30 * time.Millisecond})
	seed(t, ts, 2)
	url := ts.URL + "/collections/collPara/search?q=www"
	mustOK(t, "GET", url, nil)
	out := mustOK(t, "GET", url, nil)
	if out["cached"] != true {
		t.Fatalf("second search not cached: %v", out)
	}
	time.Sleep(80 * time.Millisecond)
	out = mustOK(t, "GET", url, nil)
	if out["cached"] != false {
		t.Fatalf("search served from cache past its TTL: %v", out)
	}
}

// TestDrainUnknownCollection: 404, not a crash.
func TestDrainUnknownCollection(t *testing.T) {
	_, ts := fixture(t, Config{})
	status, _ := call(t, "POST", ts.URL+"/collections/nope/drain", nil)
	if status != 404 {
		t.Fatalf("status = %d, want 404", status)
	}
}
