package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	docirs "repro"
)

const testDTD = `
<!ELEMENT MMFDOC   - -  (LOGBOOK, DOCTITLE, ABSTRACT, PARA+)>
<!ELEMENT LOGBOOK  - O  (#PCDATA)>
<!ELEMENT DOCTITLE - O  (#PCDATA)>
<!ELEMENT ABSTRACT - O  (#PCDATA)>
<!ELEMENT PARA     - O  (#PCDATA)>
`

func testDoc(i int, extra string) string {
	return fmt.Sprintf(`<MMFDOC><LOGBOOK>log %d<DOCTITLE>title %d<ABSTRACT>abstract %d<PARA>the www paragraph %s<PARA>plain filler text</MMFDOC>`, i, i, i, extra)
}

// fixture returns a server over a fresh memory system plus its test
// HTTP frontend.
func fixture(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	sys, err := docirs.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	srv := New(sys, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// call issues one JSON request and decodes the JSON response.
func call(t testing.TB, method, url string, body any) (int, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decode response: %v", method, url, err)
	}
	return resp.StatusCode, out
}

func mustOK(t testing.TB, method, url string, body any) map[string]any {
	t.Helper()
	status, out := call(t, method, url, body)
	if status < 200 || status > 299 {
		t.Fatalf("%s %s: status %d: %v", method, url, status, out["error"])
	}
	return out
}

// seed loads the DTD, n documents and the collPara collection.
func seed(t testing.TB, ts *httptest.Server, n int) []string {
	t.Helper()
	mustOK(t, "POST", ts.URL+"/dtds", map[string]any{"name": "mmf", "dtd": testDTD})
	docs := make([]string, n)
	for i := range docs {
		docs[i] = testDoc(i, "sgml markup")
	}
	out := mustOK(t, "POST", ts.URL+"/documents", map[string]any{"dtd": "mmf", "documents": docs})
	mustOK(t, "POST", ts.URL+"/collections", map[string]any{
		"name": "collPara", "spec": "ACCESS p FROM p IN PARA;",
	})
	var oids []string
	for _, v := range out["oids"].([]any) {
		oids = append(oids, v.(string))
	}
	return oids
}

func TestHealthzAndStats(t *testing.T) {
	_, ts := fixture(t, Config{})
	out := mustOK(t, "GET", ts.URL+"/healthz", nil)
	if out["status"] != "ok" {
		t.Fatalf("healthz = %v", out)
	}
	stats := mustOK(t, "GET", ts.URL+"/stats", nil)
	for _, key := range []string{"qps", "cache", "admission", "propagation_backlog", "collections"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("stats missing %q: %v", key, stats)
		}
	}
}

func TestIngestQuerySearchSession(t *testing.T) {
	_, ts := fixture(t, Config{})
	oids := seed(t, ts, 4)
	if len(oids) != 4 {
		t.Fatalf("ingested %d docs, want 4", len(oids))
	}

	// VQL mixed query, cold then cached.
	q := map[string]any{"query": `ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'www') > 0.45;`}
	cold := mustOK(t, "POST", ts.URL+"/query", q)
	if cold["cached"] != false {
		t.Fatalf("first query reported cached: %v", cold)
	}
	if int(cold["count"].(float64)) != 4 {
		t.Fatalf("query matched %v paragraphs, want 4 (one www paragraph per doc)", cold["count"])
	}
	warm := mustOK(t, "POST", ts.URL+"/query", q)
	if warm["cached"] != true {
		t.Fatalf("repeat query not served from cache: %v", warm)
	}
	if fmt.Sprint(warm["rows"]) != fmt.Sprint(cold["rows"]) {
		t.Fatalf("cached rows differ:\ncold %v\nwarm %v", cold["rows"], warm["rows"])
	}

	// Raw IRS search, cold then cached, with limit.
	su := ts.URL + "/collections/collPara/search?q=www"
	coldS := mustOK(t, "GET", su, nil)
	if coldS["cached"] != false || int(coldS["count"].(float64)) != 4 {
		t.Fatalf("cold search = %v", coldS)
	}
	warmS := mustOK(t, "GET", su+"&limit=2", nil)
	if warmS["cached"] != true || int(warmS["count"].(float64)) != 2 {
		t.Fatalf("warm limited search = %v", warmS)
	}

	// EXPLAIN returns a plan without evaluating.
	exp := mustOK(t, "POST", ts.URL+"/query", map[string]any{
		"query": q["query"], "strategy": "irs-first", "explain": true,
	})
	if plan, _ := exp["plan"].(string); plan == "" {
		t.Fatalf("explain returned no plan: %v", exp)
	}

	// Relevance feedback expands the query.
	top := coldS["results"].([]any)[0].(map[string]any)["id"].(string)
	fb := mustOK(t, "POST", ts.URL+"/collections/collPara/feedback", map[string]any{
		"query": "www", "relevant": []string{top},
	})
	if expanded, _ := fb["expanded"].(string); !strings.Contains(expanded, "#wsum") {
		t.Fatalf("feedback expansion = %v", fb)
	}

	// Stats reflect the traffic.
	stats := mustOK(t, "GET", ts.URL+"/stats", nil)
	cache := stats["cache"].(map[string]any)
	if cache["hits"].(float64) < 2 {
		t.Fatalf("expected >=2 cache hits, got %v", cache)
	}
	if stats["queries"].(float64) < 2 || stats["searches"].(float64) < 2 {
		t.Fatalf("stats undercount traffic: %v", stats)
	}
}

func TestCacheInvalidationOnUpdate(t *testing.T) {
	_, ts := fixture(t, Config{})
	seed(t, ts, 2)

	// Collect the text leaves; some of them sit under PARA objects
	// (collPara members), so rewriting all of them must surface in
	// the collection after propagation.
	leavesOut := mustOK(t, "POST", ts.URL+"/query", map[string]any{
		"query": "ACCESS t FROM t IN Text;",
	})
	var leaves []string
	for _, row := range leavesOut["rows"].([]any) {
		leaves = append(leaves, row.([]any)[0].(string))
	}
	if len(leaves) == 0 {
		t.Fatal("no text leaves found")
	}

	q := map[string]any{"query": `ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'zebra') > 0.41;`}
	first := mustOK(t, "POST", ts.URL+"/query", q)
	if int(first["count"].(float64)) != 0 {
		t.Fatalf("zebra should match nothing before the edit: %v", first)
	}
	if mustOK(t, "POST", ts.URL+"/query", q)["cached"] != true {
		t.Fatal("repeat query should hit the cache")
	}

	// Editing leaves advances the epoch; the collection runs under
	// PropagateOnQuery, so the next query must bypass the cache,
	// force propagation and see the new term.
	for _, leaf := range leaves {
		mustOK(t, "PUT", ts.URL+"/documents/"+leaf+"/text", map[string]any{
			"text": "zebra zebra zebra",
		})
	}
	after := mustOK(t, "POST", ts.URL+"/query", q)
	if after["cached"] != false {
		t.Fatalf("query after edit served stale cache entry: %v", after)
	}
	if int(after["count"].(float64)) == 0 {
		t.Fatalf("query after edit missed the new term: %v", after)
	}

	// Deleting the document invalidates again.
	doc := mustOK(t, "POST", ts.URL+"/query", map[string]any{
		"query": "ACCESS d FROM d IN MMFDOC;",
	})
	victim := doc["rows"].([]any)[0].([]any)[0].(string)
	mustOK(t, "DELETE", ts.URL+"/documents/"+victim, nil)
	final := mustOK(t, "POST", ts.URL+"/query", q)
	if final["cached"] != false {
		t.Fatalf("query after delete served stale cache entry: %v", final)
	}
}

func TestCollectionLifecycleAndFlush(t *testing.T) {
	_, ts := fixture(t, Config{})
	seed(t, ts, 2)
	mustOK(t, "POST", ts.URL+"/collections", map[string]any{
		"name": "collDoc", "spec": "ACCESS d FROM d IN MMFDOC;",
		"text_mode": "abstract", "model": "vector", "deriver": "avg", "policy": "manual",
	})
	out := mustOK(t, "GET", ts.URL+"/collections", nil)
	if n := len(out["collections"].([]any)); n != 2 {
		t.Fatalf("listed %d collections, want 2", n)
	}
	mustOK(t, "POST", ts.URL+"/collections/collDoc/flush", nil)
	mustOK(t, "DELETE", ts.URL+"/collections/collDoc", nil)
	if status, _ := call(t, "DELETE", ts.URL+"/collections/collDoc", nil); status != http.StatusNotFound {
		t.Fatalf("double drop returned %d, want 404", status)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := fixture(t, Config{})
	seed(t, ts, 1)
	cases := []struct {
		method, path string
		body         any
		want         int
	}{
		{"POST", "/query", map[string]any{}, http.StatusBadRequest},
		{"POST", "/query", map[string]any{"query": "ACCESS;", "strategy": "bogus"}, http.StatusBadRequest},
		{"POST", "/query", map[string]any{"query": "NOT VQL"}, http.StatusBadRequest},
		{"POST", "/documents", map[string]any{"dtd": "nope", "documents": []string{"<X>"}}, http.StatusNotFound},
		{"POST", "/documents", map[string]any{"dtd": "mmf", "documents": []string{}}, http.StatusBadRequest},
		{"POST", "/collections", map[string]any{"name": "x"}, http.StatusBadRequest},
		{"POST", "/collections", map[string]any{"name": "x", "spec": "NOT VQL"}, http.StatusBadRequest},
		{"POST", "/collections", map[string]any{"name": "collPara", "spec": "ACCESS p FROM p IN PARA;"}, http.StatusConflict},
		{"GET", "/collections/collPara/search?q=www&limit=5abc", nil, http.StatusBadRequest},
		{"GET", "/collections/nope/search?q=www", nil, http.StatusNotFound},
		{"GET", "/collections/collPara/search", nil, http.StatusBadRequest},
		{"DELETE", "/documents/notanoid", nil, http.StatusBadRequest},
	}
	for _, c := range cases {
		if status, out := call(t, c.method, ts.URL+c.path, c.body); status != c.want {
			t.Errorf("%s %s: status %d (want %d): %v", c.method, c.path, status, c.want, out)
		}
	}
}

func TestAdmissionRejectsWhenSaturated(t *testing.T) {
	srv, ts := fixture(t, Config{MaxConcurrent: 1, QueueTimeout: 10 * time.Millisecond})
	seed(t, ts, 1)
	srv.sem <- struct{}{} // occupy the only evaluation slot
	defer func() { <-srv.sem }()
	status, out := call(t, "POST", ts.URL+"/query", map[string]any{
		"query": "ACCESS p FROM p IN PARA;",
	})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("saturated server returned %d: %v", status, out)
	}
	if srv.stats.rejected.Load() == 0 {
		t.Fatal("rejection not counted")
	}
}

func TestLRUCache(t *testing.T) {
	c := newQueryCache(2, 0)
	k := func(q string) cacheKey { return cacheKey{kind: "query", query: q} }
	c.put(k("a"), 1, 1)
	c.put(k("b"), 2, 1)
	if _, ok := c.get(k("a")); !ok {
		t.Fatal("a evicted too early")
	}
	c.put(k("c"), 3, 1) // evicts b (least recently used after the get of a)
	if _, ok := c.get(k("b")); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.get(k("a")); !ok || v != 1 {
		t.Fatalf("a = %v, %v", v, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// Epoch difference misses.
	c.put(cacheKey{kind: "query", query: "a", epoch: 1}, 9, 1)
	if v, _ := c.get(cacheKey{kind: "query", query: "a", epoch: 1}); v != 9 {
		t.Fatal("epoch-qualified entry lost")
	}

	disabled := newQueryCache(0, 0)
	disabled.put(k("a"), 1, 1)
	if _, ok := disabled.get(k("a")); ok {
		t.Fatal("disabled cache served an entry")
	}
}
