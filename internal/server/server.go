// Package server is the concurrent document service layer: an
// HTTP/JSON API over docirs.System, turning the paper's single-user
// coupling into a multi-client query service. It adds what every
// modern treatment of the coupling problem assumes in front of the
// index:
//
//   - an admission layer (counting semaphore) bounding the number of
//     concurrently evaluated queries, with a bounded wait and 503 on
//     overload;
//   - an LRU query-result cache keyed on (kind, collection, strategy,
//     query, epoch). The epoch component ties the cache to the
//     coupling's update log: any committed document mutation advances
//     the epoch (core.Coupling.Epoch / core.Collection.Epoch), so a
//     deferred-propagation policy such as PropagateOnQuery stays
//     correct — a stale entry simply becomes unreachable and ages
//     out;
//   - expvar-style counters (/stats): QPS, cache hit rate, in-flight
//     and rejected requests, and the propagation backlog across
//     collections.
package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	docirs "repro"
	"repro/internal/obs"
)

// Config tunes the service layer. The zero value selects sensible
// defaults for every field.
type Config struct {
	// MaxConcurrent bounds the number of query/search/ingest requests
	// evaluated at once; further requests wait up to QueueTimeout for
	// a slot. Default: 4 × GOMAXPROCS.
	MaxConcurrent int
	// QueueTimeout is the longest a request waits for an admission
	// slot before being rejected with 503. Default: 5s.
	QueueTimeout time.Duration
	// CacheSize is the capacity (entries) of the query-result cache;
	// negative disables caching. Default (0): 1024.
	CacheSize int
	// CacheTTL bounds the age of query-cache entries; 0 never
	// expires (the epoch key already invalidates on mutation).
	CacheTTL time.Duration
	// CachePolicy selects the query-cache replacement policy:
	// CachePolicy2Q (default) is the cost-aware 2Q cache (probationary
	// admission, ghost readmission, eviction by frequency × measured
	// rebuild cost); CachePolicyLRU the plain recency LRU kept as the
	// A/B baseline. Swappable at runtime via SetCachePolicy.
	CachePolicy string
	// MaxBatch bounds the number of documents accepted by one ingest
	// request. Default: 1024.
	MaxBatch int
	// AsyncMaxPending bounds each async-policy collection's pending
	// propagation queue; a full queue rejects async ingest with 503.
	// 0 selects the coupling default (4096); negative unbounded.
	AsyncMaxPending int
	// AsyncCoalesce is the background flusher's group-commit window
	// for async-policy collections. 0 (the default) lets each
	// collection adapt its window inside [AsyncCoalesceMin,
	// AsyncCoalesceMax] from observed arrival rate and queue depth;
	// positive pins a fixed window (the pre-adaptive behavior);
	// negative flushes immediately.
	AsyncCoalesce time.Duration
	// AsyncCoalesceMin/Max bound the adaptive coalescing window. 0
	// selects the coupling defaults (250µs / 8ms). Ignored when
	// AsyncCoalesce pins a fixed window.
	AsyncCoalesceMin time.Duration
	AsyncCoalesceMax time.Duration
	// CompactRatio enables tombstone-ratio-triggered background index
	// compaction for collections created through the API; 0 disables.
	CompactRatio float64
	// SlowQueryThreshold is the duration at which a request trace is
	// admitted to the process slow log (/debug/slowlog). Default:
	// 250ms; negative disables the slow log.
	SlowQueryThreshold time.Duration
	// SlowLogSize is the slow log's ring capacity. Default: 128.
	SlowLogSize int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 5 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	} else if c.CacheSize < 0 {
		c.CacheSize = 0
	}
	if c.CachePolicy == "" {
		c.CachePolicy = CachePolicy2Q
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.SlowQueryThreshold == 0 {
		c.SlowQueryThreshold = 250 * time.Millisecond
	} else if c.SlowQueryThreshold < 0 {
		c.SlowQueryThreshold = 0 // obs treats 0 as "admit nothing"
	}
	if c.SlowLogSize <= 0 {
		c.SlowLogSize = 128
	}
	return c
}

// Server serves one docirs.System to many concurrent clients.
type Server struct {
	sys   *docirs.System
	cfg   Config
	sem   chan struct{}
	cache atomic.Pointer[cacheBox]
	mux   *http.ServeMux
	stats counters
	qps   *obs.Rate
	start time.Time

	// dtds names loaded DTDs so ingest requests can reference them.
	dtdMu sync.RWMutex
	dtds  map[string]*docirs.DTD
}

// cacheBox pairs a cache with its policy name behind one pointer so
// SetCachePolicy can swap both atomically while requests are in
// flight (the two policies are distinct concrete types, which rules
// out atomic.Value).
type cacheBox struct {
	policy string
	c      queryCacher
}

// newCacheFor builds a cache of the named policy.
func newCacheFor(policy string, size int, ttl time.Duration) (*cacheBox, error) {
	switch policy {
	case CachePolicyLRU:
		return &cacheBox{policy: policy, c: newQueryCache(size, ttl)}, nil
	case CachePolicy2Q:
		return &cacheBox{policy: policy, c: newCostCache(size, ttl)}, nil
	}
	return nil, fmt.Errorf("unknown cache policy %q (want %q or %q)",
		policy, CachePolicy2Q, CachePolicyLRU)
}

// qcache returns the live query cache.
func (s *Server) qcache() queryCacher { return s.cache.Load().c }

// CachePolicy returns the live cache's policy name.
func (s *Server) CachePolicy() string { return s.cache.Load().policy }

// SetCachePolicy swaps the query cache for a fresh one of the named
// policy ("2q" or "lru"). The swap empties the cache — that is the
// point: it is the A/B lever (bench harnesses flip policies between
// measurement passes), and a comparison starting from a warm foreign
// cache would measure the wrong thing. Setting the current policy
// re-creates the cache too (a cheap purge-with-reset-counters).
func (s *Server) SetCachePolicy(policy string) error {
	box, err := newCacheFor(policy, s.cfg.CacheSize, s.cfg.CacheTTL)
	if err != nil {
		return err
	}
	s.cache.Store(box)
	return nil
}

// CacheMetrics snapshots the live cache's internal accounting
// (hit/miss by reason, promotions, admission rejections, evicted
// cost). The server-level hit/miss counters in /stats aggregate
// across policy swaps; these reset with each SetCachePolicy.
func (s *Server) CacheMetrics() CacheMetrics { return s.qcache().metrics() }

// New wraps sys in a service layer. The caller keeps ownership of
// sys (and closes it after the HTTP server shuts down).
//
// Pipeline tuning (AsyncMaxPending, AsyncCoalesce) is applied to the
// collections already in sys as well: those options are not
// persisted, so collections restored from disk would otherwise run
// with baked-in defaults and ignore the configuration. The
// auto-compaction policy IS persisted per collection (the .irsc
// trailer re-arms it on load), so CompactRatio only arms collections
// that came up with no policy of their own — overwriting would undo
// exactly the per-collection tuning the trailer preserved.
func New(sys *docirs.System, cfg Config) *Server {
	cfg = cfg.withDefaults()
	for _, name := range sys.Collections() {
		col, err := sys.Collection(name)
		if err != nil {
			continue
		}
		col.ConfigureAsyncBounds(cfg.AsyncCoalesceMin, cfg.AsyncCoalesceMax)
		col.ConfigureAsync(cfg.AsyncMaxPending, cfg.AsyncCoalesce)
		if ratio, _ := col.IRS().Index().AutoCompact(); ratio == 0 && cfg.CompactRatio > 0 {
			col.IRS().SetAutoCompact(cfg.CompactRatio, 0)
		}
	}
	s := &Server{
		sys:   sys,
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxConcurrent),
		qps:   obs.NewRate(),
		start: time.Now(),
		dtds:  make(map[string]*docirs.DTD),
	}
	box, err := newCacheFor(cfg.CachePolicy, cfg.CacheSize, cfg.CacheTTL)
	if err != nil {
		// New has no error path; an unrecognized policy string falls
		// back to the default rather than panicking a serving process.
		box, _ = newCacheFor(CachePolicy2Q, cfg.CacheSize, cfg.CacheTTL)
	}
	s.cache.Store(box)
	// The slow log is process-global (traces from the coupling's flush
	// pipeline land in it too); the serving layer owns its tuning, the
	// way http.DefaultServeMux is owned by whoever serves it.
	obs.SharedSlowLog.Configure(cfg.SlowLogSize, cfg.SlowQueryThreshold)
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Handler returns the HTTP handler (for http.Server or httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// System returns the wrapped system.
func (s *Server) System() *docirs.System { return s.sys }

// acquire takes an admission slot, waiting up to QueueTimeout. It
// returns false when the server is saturated or the client went away.
func (s *Server) acquire(r *http.Request) bool {
	select {
	case s.sem <- struct{}{}:
		s.stats.inflight.Add(1)
		return true
	default:
	}
	t := time.NewTimer(s.cfg.QueueTimeout)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		s.stats.inflight.Add(1)
		return true
	case <-r.Context().Done():
	case <-t.C:
	}
	s.stats.rejected.Add(1)
	return false
}

func (s *Server) release() {
	s.stats.inflight.Add(-1)
	<-s.sem
}

// traceCtxKey carries the request trace through the handler chain.
type traceCtxKey struct{}

// trFrom returns the request's trace context; nil (a valid no-op
// trace) for untraced requests.
func trFrom(r *http.Request) *obs.Trace {
	tr, _ := r.Context().Value(traceCtxKey{}).(*obs.Trace)
	return tr
}

// admitted wraps an evaluation handler with the admission layer plus
// the observability envelope: a per-endpoint latency histogram, a
// request trace (queue wait recorded as its first span) offered to
// the slow log on finish, and the endpoint's share of the QPS window.
func (s *Server) admitted(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := obs.Default.Histogram("mmf_http_request_seconds", "endpoint", endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		tr := obs.StartTrace(endpoint, r.URL.Path)
		if !s.acquire(r) {
			tr.Attr("rejected", true)
			tr.Finish(obs.SharedSlowLog)
			writeError(w, http.StatusServiceUnavailable, "server overloaded: no evaluation slot available")
			return
		}
		tr.Span("queue_wait", time.Since(t0))
		defer func() {
			s.release()
			hist.Observe(time.Since(t0))
			tr.Finish(obs.SharedSlowLog)
		}()
		if tr != nil {
			r = r.WithContext(context.WithValue(r.Context(), traceCtxKey{}, tr))
		}
		h(w, r)
	}
}

// PreloadDTD parses and registers a DTD under name before serving
// (the -dtd flag of mmfserve); equivalent to one POST /dtds request.
func (s *Server) PreloadDTD(name, src string) error {
	d, err := s.sys.LoadDTD(src)
	if err != nil {
		return err
	}
	s.dtdMu.Lock()
	s.dtds[name] = d
	s.dtdMu.Unlock()
	return nil
}

// dtd looks up a loaded DTD by name.
func (s *Server) dtd(name string) (*docirs.DTD, bool) {
	s.dtdMu.RLock()
	defer s.dtdMu.RUnlock()
	d, ok := s.dtds[name]
	return d, ok
}
