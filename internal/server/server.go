// Package server is the concurrent document service layer: an
// HTTP/JSON API over docirs.System, turning the paper's single-user
// coupling into a multi-client query service. It adds what every
// modern treatment of the coupling problem assumes in front of the
// index:
//
//   - an admission layer (counting semaphore) bounding the number of
//     concurrently evaluated queries, with a bounded wait and 503 on
//     overload;
//   - an LRU query-result cache keyed on (kind, collection, strategy,
//     query, epoch). The epoch component ties the cache to the
//     coupling's update log: any committed document mutation advances
//     the epoch (core.Coupling.Epoch / core.Collection.Epoch), so a
//     deferred-propagation policy such as PropagateOnQuery stays
//     correct — a stale entry simply becomes unreachable and ages
//     out;
//   - expvar-style counters (/stats): QPS, cache hit rate, in-flight
//     and rejected requests, and the propagation backlog across
//     collections.
package server

import (
	"net/http"
	"runtime"
	"sync"
	"time"

	docirs "repro"
)

// Config tunes the service layer. The zero value selects sensible
// defaults for every field.
type Config struct {
	// MaxConcurrent bounds the number of query/search/ingest requests
	// evaluated at once; further requests wait up to QueueTimeout for
	// a slot. Default: 4 × GOMAXPROCS.
	MaxConcurrent int
	// QueueTimeout is the longest a request waits for an admission
	// slot before being rejected with 503. Default: 5s.
	QueueTimeout time.Duration
	// CacheSize is the capacity (entries) of the query-result cache;
	// negative disables caching. Default (0): 1024.
	CacheSize int
	// CacheTTL bounds the age of query-cache entries; 0 never
	// expires (the epoch key already invalidates on mutation).
	CacheTTL time.Duration
	// MaxBatch bounds the number of documents accepted by one ingest
	// request. Default: 1024.
	MaxBatch int
	// AsyncMaxPending bounds each async-policy collection's pending
	// propagation queue; a full queue rejects async ingest with 503.
	// 0 selects the coupling default (4096); negative unbounded.
	AsyncMaxPending int
	// AsyncCoalesce is the background flusher's group-commit window
	// for async-policy collections. 0 selects the coupling default
	// (2ms); negative flushes immediately.
	AsyncCoalesce time.Duration
	// CompactRatio enables tombstone-ratio-triggered background index
	// compaction for collections created through the API; 0 disables.
	CompactRatio float64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 5 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	} else if c.CacheSize < 0 {
		c.CacheSize = 0
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	return c
}

// Server serves one docirs.System to many concurrent clients.
type Server struct {
	sys   *docirs.System
	cfg   Config
	sem   chan struct{}
	cache *queryCache
	mux   *http.ServeMux
	stats counters
	qps   *rateWindow
	start time.Time

	// dtds names loaded DTDs so ingest requests can reference them.
	dtdMu sync.RWMutex
	dtds  map[string]*docirs.DTD
}

// New wraps sys in a service layer. The caller keeps ownership of
// sys (and closes it after the HTTP server shuts down).
//
// Pipeline tuning (AsyncMaxPending, AsyncCoalesce) is applied to the
// collections already in sys as well: those options are not
// persisted, so collections restored from disk would otherwise run
// with baked-in defaults and ignore the configuration. The
// auto-compaction policy IS persisted per collection (the .irsc
// trailer re-arms it on load), so CompactRatio only arms collections
// that came up with no policy of their own — overwriting would undo
// exactly the per-collection tuning the trailer preserved.
func New(sys *docirs.System, cfg Config) *Server {
	cfg = cfg.withDefaults()
	for _, name := range sys.Collections() {
		col, err := sys.Collection(name)
		if err != nil {
			continue
		}
		col.ConfigureAsync(cfg.AsyncMaxPending, cfg.AsyncCoalesce)
		if ratio, _ := col.IRS().Index().AutoCompact(); ratio == 0 && cfg.CompactRatio > 0 {
			col.IRS().SetAutoCompact(cfg.CompactRatio, 0)
		}
	}
	s := &Server{
		sys:   sys,
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxConcurrent),
		cache: newQueryCache(cfg.CacheSize, cfg.CacheTTL),
		qps:   newRateWindow(),
		start: time.Now(),
		dtds:  make(map[string]*docirs.DTD),
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Handler returns the HTTP handler (for http.Server or httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// System returns the wrapped system.
func (s *Server) System() *docirs.System { return s.sys }

// acquire takes an admission slot, waiting up to QueueTimeout. It
// returns false when the server is saturated or the client went away.
func (s *Server) acquire(r *http.Request) bool {
	select {
	case s.sem <- struct{}{}:
		s.stats.inflight.Add(1)
		return true
	default:
	}
	t := time.NewTimer(s.cfg.QueueTimeout)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		s.stats.inflight.Add(1)
		return true
	case <-r.Context().Done():
	case <-t.C:
	}
	s.stats.rejected.Add(1)
	return false
}

func (s *Server) release() {
	s.stats.inflight.Add(-1)
	<-s.sem
}

// admitted wraps an evaluation handler with the admission layer.
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.acquire(r) {
			writeError(w, http.StatusServiceUnavailable, "server overloaded: no evaluation slot available")
			return
		}
		defer s.release()
		h(w, r)
	}
}

// PreloadDTD parses and registers a DTD under name before serving
// (the -dtd flag of mmfserve); equivalent to one POST /dtds request.
func (s *Server) PreloadDTD(name, src string) error {
	d, err := s.sys.LoadDTD(src)
	if err != nil {
		return err
	}
	s.dtdMu.Lock()
	s.dtds[name] = d
	s.dtdMu.Unlock()
	return nil
}

// dtd looks up a loaded DTD by name.
func (s *Server) dtd(name string) (*docirs.DTD, bool) {
	s.dtdMu.RLock()
	defer s.dtdMu.RUnlock()
	d, ok := s.dtds[name]
	return d, ok
}
