package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"sync"
	"testing"
	"time"
)

func ck(q string) cacheKey { return cacheKey{kind: "search", coll: "c", query: q} }

// TestCostCacheScanResistance: a flood of one-shot keys (each put
// once, never read) drains through the probationary queue and never
// displaces promoted hot entries — the failure mode the 2Q structure
// exists to prevent (an LRU of the same budget would evict every hot
// entry).
func TestCostCacheScanResistance(t *testing.T) {
	c := newCostCache(8, 0) // probation 2, main 6
	hot := []cacheKey{ck("h1"), ck("h2"), ck("h3")}
	for i, k := range hot {
		c.put(k, i, 1)
		if _, ok := c.get(k); !ok { // first re-reference promotes
			t.Fatalf("fresh put of %v missed", k)
		}
	}
	for i := 0; i < 50; i++ {
		c.put(ck(fmt.Sprintf("scan%d", i)), i, 0.5)
	}
	for i, k := range hot {
		v, ok := c.get(k)
		if !ok || v != i {
			t.Fatalf("hot key %v flushed by one-shot scan (v=%v ok=%v)", k, v, ok)
		}
	}
	m := c.metrics()
	if m.Promotions != 3 {
		t.Errorf("promotions = %d, want 3", m.Promotions)
	}
	if m.AdmissionRejects < 40 {
		t.Errorf("admission rejections = %d, want ~48", m.AdmissionRejects)
	}
	if m.Evictions != 0 {
		t.Errorf("main-segment evictions = %d, want 0", m.Evictions)
	}
}

// TestCostCacheGhostReadmission: a key evicted from probation without
// promotion leaves its key in the ghost list; re-putting it within
// the ghost horizon readmits it straight into the main segment.
func TestCostCacheGhostReadmission(t *testing.T) {
	c := newCostCache(8, 0)
	c.put(ck("a"), 1, 1)
	c.put(ck("b"), 2, 1)
	c.put(ck("x"), 3, 1) // probation cap 2: "a" falls out to ghost
	if m := c.metrics(); m.AdmissionRejects != 1 {
		t.Fatalf("admission rejections = %d, want 1", m.AdmissionRejects)
	}
	if _, ok := c.get(ck("a")); ok {
		t.Fatal("evicted probation entry still served a value")
	}
	c.put(ck("a"), 4, 1) // second reference within the ghost horizon
	m := c.metrics()
	if m.GhostReadmits != 1 {
		t.Fatalf("ghost readmissions = %d, want 1", m.GhostReadmits)
	}
	v, ok := c.get(ck("a"))
	if !ok || v != 4 {
		t.Fatalf("readmitted entry = %v, %v", v, ok)
	}
	if m = c.metrics(); m.HitsMain != 1 {
		t.Fatalf("readmitted entry not in main segment: %+v", m)
	}
}

// TestCostCacheCostAwareEviction: with equal frequency, the main
// segment evicts the cheapest-to-rebuild entry first.
func TestCostCacheCostAwareEviction(t *testing.T) {
	c := newCostCache(8, 0) // main cap 6
	for i := 1; i <= 6; i++ {
		k := ck(fmt.Sprintf("k%d", i))
		c.put(k, i, float64(i)) // cost i
		c.get(k)                // promote: freq 2, prio 2i
	}
	k7 := ck("k7")
	c.put(k7, 7, 10)
	c.get(k7) // promote: main now over budget, evicts prio-min = k1
	if _, ok := c.get(ck("k1")); ok {
		t.Fatal("cheapest entry survived eviction")
	}
	for i := 2; i <= 7; i++ {
		if _, ok := c.get(ck(fmt.Sprintf("k%d", i))); !ok {
			t.Fatalf("expensive entry k%d evicted before cheap k1", i)
		}
	}
	m := c.metrics()
	if m.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", m.Evictions)
	}
	if m.EvictedCost != 1 {
		t.Errorf("evicted cost = %v, want 1 (k1's cost)", m.EvictedCost)
	}
}

// TestCacheTTLSweepReclaimsWithoutReads: the satellite bugfix. TTL
// expiry used to be enforced only on access, so a cold key pinned its
// result slice until capacity pressure reached it; the sweep
// piggybacked on put must reclaim expired entries through write
// traffic alone — no get ever touches them — under both policies.
func TestCacheTTLSweepReclaimsWithoutReads(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	ttl := time.Minute

	t.Run(CachePolicyLRU, func(t *testing.T) {
		c := newQueryCache(64, ttl)
		c.now = clock
		for i := 0; i < 16; i++ {
			c.put(ck(fmt.Sprintf("old%d", i)), i, 1)
		}
		now = now.Add(2 * ttl)
		for i := 0; i < 4; i++ { // 4 puts × budget 8 cover all 16
			c.put(ck(fmt.Sprintf("new%d", i)), i, 1)
		}
		if got := c.len(); got != 4 {
			t.Fatalf("len = %d after sweep, want only the 4 live entries", got)
		}
		if m := c.metrics(); m.SweptExpired != 16 {
			t.Fatalf("swept = %d, want 16", m.SweptExpired)
		}
	})

	t.Run(CachePolicy2Q, func(t *testing.T) {
		now = time.Unix(1000, 0)
		c := newCostCache(64, ttl) // probation 16, main 48
		c.now = clock
		for i := 0; i < 12; i++ {
			k := ck(fmt.Sprintf("old%d", i))
			c.put(k, i, 1)
			c.get(k) // promote into the main segment
		}
		for i := 0; i < 6; i++ { // and some left on probation
			c.put(ck(fmt.Sprintf("prob%d", i)), i, 1)
		}
		if got := c.len(); got != 18 {
			t.Fatalf("pre-expiry len = %d, want 18", got)
		}
		now = now.Add(2 * ttl)
		for i := 0; i < 6; i++ {
			c.put(ck(fmt.Sprintf("new%d", i)), i, 1)
		}
		if got := c.len(); got != 6 {
			t.Fatalf("len = %d after sweep, want only the 6 live entries", got)
		}
		if m := c.metrics(); m.SweptExpired != 18 {
			t.Fatalf("swept = %d, want 18", m.SweptExpired)
		}
	})
}

// TestSetCachePolicy: the runtime A/B lever swaps implementations,
// rejects unknown names, and /stats reports the live policy.
func TestSetCachePolicy(t *testing.T) {
	srv, ts := fixture(t, Config{})
	if got := srv.CachePolicy(); got != CachePolicy2Q {
		t.Fatalf("default policy = %q, want %q", got, CachePolicy2Q)
	}
	if err := srv.SetCachePolicy(CachePolicyLRU); err != nil {
		t.Fatal(err)
	}
	if got := srv.CachePolicy(); got != CachePolicyLRU {
		t.Fatalf("policy after swap = %q", got)
	}
	if err := srv.SetCachePolicy("clairvoyant"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	stats := mustOK(t, "GET", ts.URL+"/stats", nil)
	cache := stats["cache"].(map[string]any)
	if cache["policy"] != CachePolicyLRU {
		t.Fatalf("/stats cache.policy = %v", cache["policy"])
	}
	if _, ok := cache["by_reason"].(map[string]any); !ok {
		t.Fatalf("/stats cache.by_reason missing: %v", cache)
	}
}

// TestCachePolicyRankingsUnderChurn is the race-enabled property
// test: one server hammered by concurrent searches while ingest
// churns the epoch AND the cache policy is swapped back and forth
// mid-flight (SetCachePolicy races against get/put on the old
// instance). Once quiesced, every query × limit must rank
// bit-identically under both policies — the cache is a performance
// layer and must never change served results — and a cached
// re-request must equal its miss-path original.
//
// One server, not two: OID allocation depends on query-triggered
// derivation timing, so two independently hammered systems diverge
// in their external IDs even with identical corpora. Same-system A/B
// after quiesce is the property the tentpole needs.
func TestCachePolicyRankingsUnderChurn(t *testing.T) {
	srv, ts := fixture(t, Config{CacheSize: 32})
	seed(t, ts, 5)
	queries := []string{"www", "sgml", "markup", "filler", "#and(www sgml)"}
	limits := []int{0, 3, 20}
	searchURL := func(ts *httptest.Server, q string, limit int) string {
		return fmt.Sprintf("%s/collections/collPara/search?q=%s&limit=%d",
			ts.URL, url.QueryEscape(q), limit)
	}

	stop := make(chan struct{})
	var hammers sync.WaitGroup
	for g := 0; g < 3; g++ {
		hammers.Add(1)
		go func(g int) {
			defer hammers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(searchURL(ts, queries[(i+g)%len(queries)], limits[i%len(limits)]))
				if err == nil {
					resp.Body.Close()
				}
			}
		}(g)
	}
	hammers.Add(1)
	go func() { // policy churn: swap while requests are in flight
		defer hammers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			policy := CachePolicy2Q
			if i%2 == 0 {
				policy = CachePolicyLRU
			}
			if err := srv.SetCachePolicy(policy); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// Epoch churn: sync ingest advances the collection epoch per batch.
	for i := 0; i < 15; i++ {
		mustOK(t, "POST", ts.URL+"/documents", map[string]any{
			"dtd": "mmf", "documents": []string{testDoc(100+i, fmt.Sprintf("churn www sgml %d", i))},
		})
	}
	close(stop)
	hammers.Wait()

	// Quiesced (epoch stands still): the same corpus must rank
	// bit-identically under a fresh cache of each policy.
	for _, q := range queries {
		for _, limit := range limits {
			var want any
			for _, policy := range []string{CachePolicyLRU, CachePolicy2Q} {
				if err := srv.SetCachePolicy(policy); err != nil {
					t.Fatal(err)
				}
				out := mustOK(t, "GET", searchURL(ts, q, limit), nil) // miss path
				again := mustOK(t, "GET", searchURL(ts, q, limit), nil)
				if !reflect.DeepEqual(out["results"], again["results"]) {
					t.Fatalf("%s q=%q limit=%d: cached response differs from miss-path original",
						policy, q, limit)
				}
				if want == nil {
					want = out["results"]
				} else if !reflect.DeepEqual(want, out["results"]) {
					t.Fatalf("q=%q limit=%d: rankings differ across cache policies:\nfirst: %v\nsecond: %v",
						q, limit, want, out["results"])
				}
			}
		}
	}
}
