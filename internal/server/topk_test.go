package server

import (
	"fmt"
	"testing"

	docirs "repro"
)

func TestKBucket(t *testing.T) {
	cases := map[int]int{
		0: 0, -1: 0, 1: 16, 10: 16, 16: 16, 17: 32, 100: 128, 128: 128, 129: 256,
		maxKBucket: maxKBucket,
		// Oversized (including overflow-hostile) limits degrade to the
		// exhaustive path instead of spinning the doubling loop or
		// sizing a giant heap.
		maxKBucket + 1: 0, 1 << 50: 0, 4611686018427387905: 0,
	}
	for limit, want := range cases {
		if got := kBucket(limit); got != want {
			t.Errorf("kBucket(%d) = %d, want %d", limit, got, want)
		}
	}
}

// TestSearchHugeLimit: a hostile limit must answer promptly with the
// full (truncation-free) result rather than hanging or panicking.
func TestSearchHugeLimit(t *testing.T) {
	_, ts := fixture(t, Config{})
	seed(t, ts, 4)
	out := mustOK(t, "GET", ts.URL+"/collections/collPara/search?q=www&limit=4611686018427387905", nil)
	if n := int(out["count"].(float64)); n != 4 {
		t.Fatalf("huge-limit search returned %d hits, want 4", n)
	}
}

// TestSearchLimitPushdown: a limited search must return exactly the
// prefix of the unlimited ranking, limits in the same k-bucket must
// share one cache entry, and /stats must expose the top-k counters.
func TestSearchLimitPushdown(t *testing.T) {
	_, ts := fixture(t, Config{})
	seed(t, ts, 24)
	su := ts.URL + "/collections/collPara/search?q=www+sgml"

	full := mustOK(t, "GET", su, nil)
	fullHits := full["results"].([]any)
	if len(fullHits) == 0 {
		t.Fatal("no results")
	}

	// The limited search evaluates through the top-k engine on a cold
	// bucket; its hits must be the exact prefix of the full ranking.
	lim := mustOK(t, "GET", su+"&limit=3", nil)
	if lim["cached"] != true {
		// The unlimited entry is present, so the bucketed request may
		// also legally serve from it; either way the prefix must match.
		t.Logf("limit=3 evaluated fresh (bucket miss): %v", lim["cached"])
	}
	limHits := lim["results"].([]any)
	if len(limHits) != 3 {
		t.Fatalf("limit=3 returned %d hits", len(limHits))
	}
	for i, h := range limHits {
		want := fullHits[i].(map[string]any)
		got := h.(map[string]any)
		if got["id"] != want["id"] || got["score"] != want["score"] {
			t.Fatalf("rank %d: top-k %v != exhaustive prefix %v", i, got, want)
		}
	}

	// A fresh epoch-equivalent server exercises the cold bucketed path
	// and bucket sharing: limit=2 (cold) then limit=5 (same bucket 16,
	// must hit the cached bucket entry).
	_, ts2 := fixture(t, Config{})
	seed(t, ts2, 24)
	su2 := ts2.URL + "/collections/collPara/search?q=www+sgml"
	cold := mustOK(t, "GET", su2+"&limit=2", nil)
	if cold["cached"] != false {
		t.Fatalf("cold bucketed search reported cached: %v", cold)
	}
	if n := len(cold["results"].([]any)); n != 2 {
		t.Fatalf("limit=2 returned %d hits", n)
	}
	warm := mustOK(t, "GET", su2+"&limit=5", nil)
	if warm["cached"] != true {
		t.Fatalf("limit=5 in the same k-bucket missed the cache: %v", warm)
	}
	if n := len(warm["results"].([]any)); n != 5 {
		t.Fatalf("limit=5 returned %d hits", n)
	}
	// The bucketed entries must agree with the exhaustive ranking.
	full2 := mustOK(t, "GET", su2, nil)
	f2 := full2["results"].([]any)
	for i, h := range warm["results"].([]any) {
		want := f2[i].(map[string]any)
		got := h.(map[string]any)
		if got["id"] != want["id"] || got["score"] != want["score"] {
			t.Fatalf("bucketed rank %d: %v != %v", i, got, want)
		}
	}

	// /stats surfaces the top-k counters.
	stats := mustOK(t, "GET", ts2.URL+"/stats", nil)
	coll := stats["collections"].(map[string]any)["collPara"].(map[string]any)
	topk, ok := coll["topk"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing topk section: %v", coll)
	}
	for _, key := range []string{"queries", "candidates_scored", "candidates_pruned", "prune_rate", "shards_skipped", "bounds_staleness"} {
		if _, ok := topk[key]; !ok {
			t.Errorf("topk stats missing %q: %v", key, topk)
		}
	}
	if topk["queries"].(float64) < 1 {
		t.Errorf("topk queries = %v, want >= 1", topk["queries"])
	}
}

// TestSearchBucketFallbackExhaustive is the regression test for the
// limit > len(cached) edge of the k-bucket cache: a bucketed top-k
// evaluation that returned fewer hits than its bucket is provably
// exhaustive and must serve every larger limit complete (promoted to
// the unlimited slot), while a full-bucket result — truncated at k —
// must never be served for a limit beyond its bucket as if it were
// the complete ranking.
func TestSearchBucketFallbackExhaustive(t *testing.T) {
	_, ts := fixture(t, Config{})
	seed(t, ts, 5) // 5 matches for "www": any bucket ≥ 16 is exhaustive
	su := ts.URL + "/collections/collPara/search?q=www"

	cold := mustOK(t, "GET", su+"&limit=3", nil)
	if cold["cached"] != false || len(cold["results"].([]any)) != 3 {
		t.Fatalf("cold limit=3: %v", cold)
	}
	// limit=40 maps to bucket 64 — a miss there must fall back to the
	// promoted exhaustive entry and return all 5 hits, complete, not
	// re-evaluated and not truncated.
	over := mustOK(t, "GET", su+"&limit=40", nil)
	if over["cached"] != true {
		t.Fatalf("limit=40 did not serve from the promoted exhaustive entry: %v", over)
	}
	if n := int(over["count"].(float64)); n != 5 {
		t.Fatalf("limit=40 returned %d hits, want all 5", n)
	}
	// The unlimited request itself hits the promoted entry too.
	full := mustOK(t, "GET", su, nil)
	if full["cached"] != true || int(full["count"].(float64)) != 5 {
		t.Fatalf("limit=0 after promotion: %v", full)
	}

	// Danger direction: with 24 matches, a limit=10 evaluation fills
	// its 16-bucket exactly — truncated, NOT exhaustive — and must not
	// be promoted: the limit=20 request below needs 20 hits and would
	// silently lose 4 if the truncated entry were served as complete.
	_, ts2 := fixture(t, Config{})
	seed(t, ts2, 24)
	su2 := ts2.URL + "/collections/collPara/search?q=www"
	if out := mustOK(t, "GET", su2+"&limit=10", nil); int(out["count"].(float64)) != 10 {
		t.Fatalf("limit=10: %v", out)
	}
	out := mustOK(t, "GET", su2+"&limit=20", nil)
	if out["cached"] != false {
		t.Fatalf("limit=20 served a cached entry despite only a truncated 16-bucket existing: %v", out)
	}
	if n := int(out["count"].(float64)); n != 20 {
		t.Fatalf("limit=20 returned %d hits, want 20", n)
	}
}

// TestCompactPolicyPrecedence: a collection that comes up with its
// own auto-compaction policy (re-armed from the persisted .irsc
// trailer) must keep it across server.New — the CompactRatio config
// only arms collections that have none. Regression for the restart
// path silently overwriting per-collection tuning with the flag
// default.
func TestCompactPolicyPrecedence(t *testing.T) {
	sys, err := docirs.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	mustDTD, err := sys.LoadDTD(testDTD)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.LoadDocument(mustDTD, testDoc(0, "sgml markup")); err != nil {
		t.Fatal(err)
	}
	armed, err := sys.CreateCollection("armed", "ACCESS p FROM p IN PARA;", docirs.CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.CreateCollection("plain", "ACCESS p FROM p IN PARA;", docirs.CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Stands in for the trailer re-arm a persistent load performs.
	armed.IRS().SetAutoCompact(0.25, 5)

	New(sys, Config{CompactRatio: 0.5})
	if ratio, min := armed.IRS().Index().AutoCompact(); ratio != 0.25 || min != 5 {
		t.Errorf("armed collection's policy overwritten by config: (%v, %d), want (0.25, 5)", ratio, min)
	}
	if ratio, _ := plain.IRS().Index().AutoCompact(); ratio != 0.5 {
		t.Errorf("policy-less collection not armed by config: ratio %v, want 0.5", ratio)
	}
}

// TestSearchLimitDeterministicTies: equal-score hits must come back
// in ascending OID order on every evaluation path, so the top-k
// boundary is stable.
func TestSearchLimitDeterministicTies(t *testing.T) {
	_, ts := fixture(t, Config{CacheSize: -1}) // no cache: every request re-evaluates
	seed(t, ts, 12)
	su := ts.URL + "/collections/collPara/search?q=www&limit=6"
	var first []any
	for round := 0; round < 3; round++ {
		out := mustOK(t, "GET", su, nil)
		hits := out["results"].([]any)
		if round == 0 {
			first = hits
			// Seeded paragraphs are near-identical, so equal scores
			// exist; verify ascending id among equal scores.
			for i := 1; i < len(hits); i++ {
				a := hits[i-1].(map[string]any)
				b := hits[i].(map[string]any)
				if a["score"] == b["score"] && a["id"].(string) >= b["id"].(string) {
					t.Fatalf("tie not broken by id: %v before %v", a, b)
				}
			}
			continue
		}
		if fmt.Sprint(hits) != fmt.Sprint(first) {
			t.Fatalf("round %d ranking differs:\n%v\n%v", round, hits, first)
		}
	}
}
