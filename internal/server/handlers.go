package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	docirs "repro"
	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/irs"
	"repro/internal/obs"
)

// routes wires the endpoint table. Query-evaluation and ingest
// endpoints go through the admission layer (which also wraps them in
// the per-endpoint latency histogram and request trace); cheap
// metadata endpoints (healthz, stats, metrics, listings) bypass it so
// they stay responsive under saturation.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/slowlog", s.handleSlowlog)
	s.mux.HandleFunc("POST /dtds", s.handleLoadDTD)
	s.mux.HandleFunc("POST /documents", s.admitted("ingest", s.handleIngest))
	s.mux.HandleFunc("DELETE /documents/{oid}", s.admitted("delete_document", s.handleDeleteDocument))
	s.mux.HandleFunc("PUT /documents/{oid}/text", s.admitted("set_text", s.handleSetText))
	s.mux.HandleFunc("GET /collections", s.handleListCollections)
	s.mux.HandleFunc("POST /collections", s.admitted("create_collection", s.handleCreateCollection))
	s.mux.HandleFunc("DELETE /collections/{name}", s.admitted("drop_collection", s.handleDropCollection))
	s.mux.HandleFunc("POST /collections/{name}/flush", s.admitted("flush", s.handleFlush))
	s.mux.HandleFunc("POST /collections/{name}/drain", s.admitted("drain", s.handleDrain))
	s.mux.HandleFunc("POST /collections/{name}/feedback", s.admitted("feedback", s.handleFeedback))
	s.mux.HandleFunc("GET /collections/{name}/search", s.admitted("search", s.handleSearch))
	s.mux.HandleFunc("POST /query", s.admitted("query", s.handleQuery))
}

// --- helpers -------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// fail reports a request error and counts it.
func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.stats.errored.Add(1)
	writeError(w, status, format, args...)
}

// maxBodyBytes bounds request bodies (ingest batches included).
const maxBodyBytes = 64 << 20

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func parseStrategy(name string) (docirs.Strategy, error) {
	switch name {
	case "", "auto":
		return docirs.StrategyAuto, nil
	case "independent":
		return docirs.StrategyIndependent, nil
	case "irs-first":
		return docirs.StrategyIRSFirst, nil
	}
	return docirs.StrategyAuto, fmt.Errorf("unknown strategy %q (want auto, independent or irs-first)", name)
}

func parseTextMode(name string) (int, error) {
	switch name {
	case "", "full":
		return docirs.ModeFullText, nil
	case "abstract":
		return docirs.ModeAbstract, nil
	case "own":
		return docirs.ModeOwnText, nil
	}
	return docirs.ModeFullText, fmt.Errorf("unknown text mode %q (want full, abstract or own)", name)
}

// --- health & stats ------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"epoch":  s.sys.Epoch(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits := s.stats.cacheHits.Load()
	misses := s.stats.cacheMisses.Load()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	backlog := int64(0)
	colls := make(map[string]any)
	for _, name := range s.sys.Collections() {
		col, err := s.sys.Collection(name)
		if err != nil {
			continue // dropped concurrently
		}
		pending := col.PendingOps()
		backlog += int64(pending)
		cs := col.Stats().Snapshot()
		ix := col.IRS().Index()
		avgGroup := 0.0
		if cs.GroupCommits > 0 {
			avgGroup = float64(cs.GroupedOps) / float64(cs.GroupCommits)
		}
		live, dead := ix.TombstoneStats()
		tk := col.IRS().TopKStats()
		degraded, degradedReason := col.Degraded()
		// Durability metrics: the write-ahead log behind this
		// collection's ingest path (enabled=false in memory mode or
		// with -no-wal). recovered_* appear only when this process's
		// open found a non-empty log to replay — evidence of a crash.
		walBlock := map[string]any{"enabled": false}
		if ws, ok := col.IRS().WALStats(); ok {
			walBlock = map[string]any{
				"enabled":   true,
				"policy":    ws.Policy,
				"seq":       ws.Seq,
				"epoch":     ws.Epoch,
				"watermark": ws.Watermark,
				"bytes":     ws.Bytes,
				"appends":   ws.Appends,
				"fsyncs":    ws.Syncs,
				"failed":    ws.Failed,
			}
			if !ws.LastSync.IsZero() {
				walBlock["last_fsync_unix_ms"] = ws.LastSync.UnixMilli()
			}
			if rep, ok := col.IRS().WALRecovery(); ok {
				walBlock["recovered_records"] = rep.Records
				walBlock["recovered_replayed"] = rep.Replayed
				walBlock["recovered_torn_bytes"] = rep.TornBytes
				walBlock["recovered_uncommitted"] = rep.Uncommitted
			}
		}
		pruneRate := 0.0
		if tk.Scored+tk.Pruned > 0 {
			pruneRate = float64(tk.Pruned) / float64(tk.Scored+tk.Pruned)
		}
		colls[name] = map[string]any{
			"docs":              col.DocCount(),
			"policy":            col.Policy().String(),
			"epoch":             col.Epoch(),
			"pending_ops":       pending,
			"buffered_queries":  col.BufferedQueries(),
			"irs_searches":      cs.IRSSearches,
			"buffer_hits":       cs.BufferHits,
			"buffer_misses":     cs.BufferMisses,
			"ops_logged":        cs.OpsLogged,
			"ops_applied":       cs.OpsApplied,
			"flushes":           cs.Flushes,
			"indexed":           cs.Indexed,
			"shards":            ix.ShardCount(),
			"snapshots":         ix.SnapshotCount(),
			"shard_bytes":       ix.ShardSizes(),
			"compression_ratio": ix.CompressionRatio(),
			// shard_bytes totals split by residency: heap_bytes is what
			// the inverted file actually costs in Go heap, mapped_bytes
			// the part served from the read-only .irsc mapping (0 for
			// heap-loaded collections). Capacity planning for mapped
			// serving watches heap_bytes; the OS page cache owns the
			// rest.
			"heap_bytes":   ix.HeapBytes(),
			"mapped_bytes": ix.MappedBytes(),
			// Top-k engine metrics: how many queries went through the
			// streaming path, how many candidate documents the MaxScore
			// bounds let it skip scoring entirely, how many whole shards
			// the cross-shard threshold retired without a scan, how many
			// compressed posting blocks kept their payloads unexpanded
			// (vs postings decoded), and how loose the maintained max-tf
			// bounds have become (0 exact, →1 as tombstoned heavyweights
			// pile up before compaction).
			"topk": map[string]any{
				"queries":           tk.Queries,
				"candidates_scored": tk.Scored,
				"candidates_pruned": tk.Pruned,
				"prune_rate":        pruneRate,
				"shards_skipped":    tk.ShardsSkipped,
				"blocks_skipped":    tk.BlocksSkipped,
				"postings_decoded":  tk.PostingsDecoded,
				"bounds_staleness":  ix.BoundsStaleness(),
			},
			// Ingest-pipeline metrics: queue state, group-commit
			// shape, where flush time goes (analysis outside the
			// commit lock vs the lock-holding merge), and index
			// hygiene.
			"pipeline": map[string]any{
				"queue_depth":    pending,
				"queue_capacity": col.AsyncMaxPending(),
				// The group-commit window the background flusher is
				// currently waiting out. Under the adaptive controller
				// it moves inside [coalesce_min_ms, coalesce_max_ms]
				// with arrival rate and queue depth; a fixed
				// -async-coalesce override pins it.
				"coalesce_window_ms": float64(col.CoalesceWindow()) / 1e6,
				"coalesce_adaptive":  col.CoalesceAdaptive(),
				"coalesce_min_ms":    float64(col.CoalesceMin()) / 1e6,
				"coalesce_max_ms":    float64(col.CoalesceMax()) / 1e6,
				"ingest_watermark":   col.Watermark(),
				"applied_watermark":  col.AppliedWatermark(),
				"async_flushes":      cs.AsyncFlushes,
				"group_commits":      cs.GroupCommits,
				"avg_group_size":     avgGroup,
				"analyze_ms":         float64(cs.AnalyzeNanos) / 1e6,
				"commit_ms":          float64(cs.CommitNanos) / 1e6,
				"flush_errors":       cs.FlushErrors,
				"flush_recoveries":   cs.FlushRecoveries,
				"last_flush_error":   col.LastFlushError(),
				"degraded":           degraded,
				"degraded_reason":    degradedReason,
				"compactions":        ix.Compactions(),
				"tombstones":         dead,
				"live_docs":          live,
				"tombstone_ratio":    ix.TombstoneRatio(),
			},
			"wal": walBlock,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"epoch":          s.sys.Epoch(),
		"qps":            s.qps.PerSecond(),
		"queries":        s.stats.queries.Load(),
		"searches":       s.stats.searches.Load(),
		"ingests":        s.stats.ingests.Load(),
		"edits":          s.stats.edits.Load(),
		"errors":         s.stats.errored.Load(),
		// Server-level hits/misses/hit_rate aggregate across policy
		// swaps; the nested by-reason block resets with SetCachePolicy
		// (it belongs to the live cache instance).
		"cache": func() map[string]any {
			cm := s.CacheMetrics()
			return map[string]any{
				"hits":     hits,
				"misses":   misses,
				"hit_rate": hitRate,
				"entries":  cm.Entries,
				"capacity": s.cfg.CacheSize,
				"policy":   cm.Policy,
				"by_reason": map[string]any{
					"hits_main":            cm.HitsMain,
					"hits_probation":       cm.HitsProbation,
					"misses_cold":          cm.MissesCold,
					"misses_expired":       cm.MissesExpired,
					"promotions":           cm.Promotions,
					"ghost_readmits":       cm.GhostReadmits,
					"admission_rejections": cm.AdmissionRejects,
					"evictions":            cm.Evictions,
					"evicted_cost":         cm.EvictedCost,
					"swept_expired":        cm.SweptExpired,
				},
			}
		}(),
		"admission": map[string]any{
			"inflight":       s.stats.inflight.Load(),
			"max_concurrent": s.cfg.MaxConcurrent,
			"rejected":       s.stats.rejected.Load(),
		},
		"ingest": map[string]any{
			"async_documents": s.stats.asyncIngests.Load(),
			"backpressured":   s.stats.backpressured.Load(),
			"drains":          s.stats.drains.Load(),
		},
		"propagation_backlog": backlog,
		"collections":         colls,
		// Latency distributions of every histogram series the process
		// records (request endpoints, top-k phases, flush stages),
		// digested to fixed quantiles. /metrics carries the full
		// bucketed form of the same series.
		"latency": obs.Default.Summaries(),
		"slowlog": map[string]any{
			"threshold_ms": float64(obs.SharedSlowLog.Threshold()) / 1e6,
			"capacity":     obs.SharedSlowLog.Capacity(),
			"retained":     obs.SharedSlowLog.Len(),
			"recorded":     obs.SharedSlowLog.Recorded(),
		},
	})
}

// handleMetrics serves the Prometheus text exposition (format 0.0.4):
// the service counters and read-on-scrape gauges rendered directly
// from this server's state, then every histogram/counter series of
// the process-wide obs registry. Writing the server's own scalars
// inline (instead of registering gauge closures) keeps multiple
// Server instances in one process — the test suite's normal shape —
// from fighting over registry slots.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	counter := func(name, help string, pairs ...any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for i := 0; i+2 < len(pairs); i += 3 {
			fmt.Fprintf(&b, "%s{%s=%q} %d\n", name, pairs[i], pairs[i+1], pairs[i+2])
		}
	}
	counter("mmf_requests_total", "Requests served by kind.",
		"kind", "query", s.stats.queries.Load(),
		"kind", "search", s.stats.searches.Load(),
		"kind", "ingest", s.stats.ingests.Load(),
		"kind", "edit", s.stats.edits.Load(),
		"kind", "drain", s.stats.drains.Load())
	counter("mmf_request_errors_total", "Requests answered with an error body.",
		"kind", "all", s.stats.errored.Load())
	counter("mmf_admission_rejected_total", "Admission rejections (503).",
		"kind", "all", s.stats.rejected.Load())
	counter("mmf_cache_events_total", "Query-cache lookups by outcome.",
		"outcome", "hit", s.stats.cacheHits.Load(),
		"outcome", "miss", s.stats.cacheMisses.Load())
	cm := s.CacheMetrics()
	counter("mmf_cache_policy_events_total", "Live cache's events by reason (resets on SetCachePolicy).",
		"event", "hit_main", cm.HitsMain,
		"event", "hit_probation", cm.HitsProbation,
		"event", "miss_cold", cm.MissesCold,
		"event", "miss_expired", cm.MissesExpired,
		"event", "promotion", cm.Promotions,
		"event", "ghost_readmit", cm.GhostReadmits,
		"event", "admission_reject", cm.AdmissionRejects,
		"event", "eviction", cm.Evictions,
		"event", "swept_expired", cm.SweptExpired)
	counter("mmf_async_ingest_total", "Async-mode ingest outcomes.",
		"outcome", "accepted", s.stats.asyncIngests.Load(),
		"outcome", "backpressured", s.stats.backpressured.Load())
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, strconv.FormatFloat(v, 'g', -1, 64))
	}
	gauge("mmf_inflight_requests", "Currently admitted requests.",
		float64(s.stats.inflight.Load()))
	gauge("mmf_requests_per_second", "Request rate over the trailing window.",
		s.qps.PerSecond())
	gauge("mmf_cache_entries", "Query-cache entries resident.",
		float64(cm.Entries))
	gauge("mmf_cache_evicted_cost_seconds", "Summed rebuild cost of entries whose values were dropped.",
		cm.EvictedCost)
	gauge("mmf_uptime_seconds", "Seconds since the server started.",
		time.Since(s.start).Seconds())
	backlog := int64(0)
	fmt.Fprintf(&b, "# HELP mmf_coalesce_window_seconds Current group-commit coalescing window per collection.\n"+
		"# TYPE mmf_coalesce_window_seconds gauge\n")
	for _, name := range s.sys.Collections() {
		if col, err := s.sys.Collection(name); err == nil {
			backlog += int64(col.PendingOps())
			fmt.Fprintf(&b, "mmf_coalesce_window_seconds{collection=%q} %s\n",
				name, strconv.FormatFloat(col.CoalesceWindow().Seconds(), 'g', -1, 64))
		}
	}
	gauge("mmf_propagation_backlog", "Pending propagation ops across collections.",
		float64(backlog))
	obs.Default.WritePrometheus(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

// handleSlowlog serves the N slowest retained request/flush traces
// (default 32, ?n= to adjust), slowest first, each with its stage
// spans and annotations.
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	n := 32
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			s.fail(w, http.StatusBadRequest, "bad n %q", q)
			return
		}
		n = v
	}
	traces := obs.SharedSlowLog.Slowest(n)
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_ms": float64(obs.SharedSlowLog.Threshold()) / 1e6,
		"capacity":     obs.SharedSlowLog.Capacity(),
		"recorded":     obs.SharedSlowLog.Recorded(),
		"count":        len(traces),
		"traces":       traces,
	})
}

// --- DTDs & documents ---------------------------------------------

func (s *Server) handleLoadDTD(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
		DTD  string `json:"dtd"`
	}
	if !s.decode(w, r, &req) {
		return
	}
	if req.Name == "" || req.DTD == "" {
		s.fail(w, http.StatusBadRequest, "name and dtd are required")
		return
	}
	if err := s.PreloadDTD(req.Name, req.DTD); err != nil {
		s.fail(w, http.StatusBadRequest, "load dtd: %v", err)
		return
	}
	d, _ := s.dtd(req.Name)
	writeJSON(w, http.StatusCreated, map[string]any{
		"name":     req.Name,
		"elements": len(d.ElementNames()),
	})
}

// asyncCollections returns the collections running the async
// propagation policy.
func (s *Server) asyncCollections() []*docirs.Collection {
	var out []*docirs.Collection
	for _, name := range s.sys.Collections() {
		col, err := s.sys.Collection(name)
		if err != nil {
			continue
		}
		if col.Policy() == docirs.PropagateAsync {
			out = append(out, col)
		}
	}
	return out
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req struct {
		DTD       string   `json:"dtd"`
		Documents []string `json:"documents"`
		// Mode selects the ingest pipeline: "sync" (default) answers
		// 201 once documents are stored, leaving propagation to each
		// collection's policy; "async" additionally requires headroom
		// in every async collection's pending queue — a full queue is
		// backpressure (503 + Retry-After) — and answers 202 with the
		// per-collection watermarks the batch was logged under.
		Mode string `json:"mode"`
	}
	if !s.decode(w, r, &req) {
		return
	}
	async := false
	switch req.Mode {
	case "", "sync":
	case "async":
		async = true
	default:
		s.fail(w, http.StatusBadRequest, "unknown ingest mode %q (want sync or async)", req.Mode)
		return
	}
	d, ok := s.dtd(req.DTD)
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown dtd %q (load it via POST /dtds first)", req.DTD)
		return
	}
	if len(req.Documents) == 0 {
		s.fail(w, http.StatusBadRequest, "documents must be non-empty")
		return
	}
	tr := trFrom(r)
	tr.SetDetail(fmt.Sprintf("dtd=%s docs=%d mode=%s", req.DTD, len(req.Documents), req.Mode))
	tr.Attr("documents", len(req.Documents))
	tr.Attr("async", async)
	if len(req.Documents) > s.cfg.MaxBatch {
		s.fail(w, http.StatusRequestEntityTooLarge, "batch of %d exceeds limit %d", len(req.Documents), s.cfg.MaxBatch)
		return
	}
	var asyncColls []*docirs.Collection
	if async {
		asyncColls = s.asyncCollections()
		// Backpressure: never grow a saturated propagation queue.
		// Updates already committed stay correct regardless (queries
		// force pending flushes), so shedding happens before any
		// document is stored.
		for _, col := range asyncColls {
			// A degraded collection (WAL failure) can't durably log new
			// operations; shed before storing anything, like backpressure.
			if deg, reason := col.Degraded(); deg {
				s.stats.backpressured.Add(1)
				s.fail(w, http.StatusServiceUnavailable,
					"collection %q degraded: %s", col.Name(), reason)
				return
			}
			if col.AsyncBacklogFull() {
				s.stats.backpressured.Add(1)
				w.Header().Set("Retry-After", "1")
				s.fail(w, http.StatusServiceUnavailable,
					"collection %q propagation queue full (%d pending); retry later",
					col.Name(), col.PendingOps())
				return
			}
		}
	}
	oids := make([]string, 0, len(req.Documents))
	for i, src := range req.Documents {
		oid, err := s.sys.LoadDocument(d, src)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "document %d: %v (first %d stored)", i, err, len(oids))
			return
		}
		oids = append(oids, oid.String())
		s.stats.ingests.Add(1)
		if async {
			s.stats.asyncIngests.Add(1)
		}
	}
	if !async {
		writeJSON(w, http.StatusCreated, map[string]any{"oids": oids, "count": len(oids)})
		return
	}
	// 202: the documents are durably stored but IRS propagation is
	// still in flight. The watermarks identify this batch's position
	// in each async collection's log; a client needing read-your-
	// writes polls /stats (applied_watermark) or calls /drain.
	watermarks := make(map[string]any, len(asyncColls))
	for _, col := range asyncColls {
		watermarks[col.Name()] = map[string]any{
			"watermark": col.Watermark(),
			"epoch":     col.Epoch(),
		}
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"oids":       oids,
		"count":      len(oids),
		"watermarks": watermarks,
	})
}

func (s *Server) handleDeleteDocument(w http.ResponseWriter, r *http.Request) {
	oid, err := docirs.ParseOID(r.PathValue("oid"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.sys.DeleteDocument(oid); err != nil {
		s.fail(w, http.StatusNotFound, "delete %s: %v", oid, err)
		return
	}
	s.stats.edits.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"deleted": oid.String()})
}

func (s *Server) handleSetText(w http.ResponseWriter, r *http.Request) {
	oid, err := docirs.ParseOID(r.PathValue("oid"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	var req struct {
		Text string `json:"text"`
	}
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.sys.SetText(oid, req.Text); err != nil {
		s.fail(w, http.StatusBadRequest, "set text of %s: %v", oid, err)
		return
	}
	s.stats.edits.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"updated": oid.String()})
}

// --- collections ---------------------------------------------------

func (s *Server) handleListCollections(w http.ResponseWriter, r *http.Request) {
	names := s.sys.Collections()
	out := make([]map[string]any, 0, len(names))
	for _, name := range names {
		col, err := s.sys.Collection(name)
		if err != nil {
			continue
		}
		out = append(out, map[string]any{
			"name":        name,
			"spec":        col.SpecQuery(),
			"docs":        col.DocCount(),
			"policy":      col.Policy().String(),
			"pending_ops": col.PendingOps(),
			"epoch":       col.Epoch(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"collections": out})
}

func (s *Server) handleCreateCollection(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name     string `json:"name"`
		Spec     string `json:"spec"`
		TextMode string `json:"text_mode"`
		Model    string `json:"model"`
		Deriver  string `json:"deriver"`
		Policy   string `json:"policy"`
		NoIndex  bool   `json:"no_index"` // skip the initial IndexObjects pass
	}
	if !s.decode(w, r, &req) {
		return
	}
	if req.Name == "" || req.Spec == "" {
		s.fail(w, http.StatusBadRequest, "name and spec are required")
		return
	}
	// Pipeline tuning comes from the server configuration: the async
	// flusher's queue bound and group-commit window, plus the
	// background compaction threshold.
	opts := docirs.CollectionOptions{
		AsyncMaxPending:  s.cfg.AsyncMaxPending,
		AsyncCoalesce:    s.cfg.AsyncCoalesce,
		AsyncCoalesceMin: s.cfg.AsyncCoalesceMin,
		AsyncCoalesceMax: s.cfg.AsyncCoalesceMax,
		AutoCompactRatio: s.cfg.CompactRatio,
	}
	var err error
	if opts.TextMode, err = parseTextMode(req.TextMode); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if opts.Policy, err = docirs.ParsePolicy(req.Policy); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Model != "" {
		if opts.Model, err = irs.ModelByName(req.Model); err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if req.Deriver != "" {
		scheme, ok := derive.ByName(req.Deriver)
		if !ok {
			s.fail(w, http.StatusBadRequest, "unknown derivation scheme %q", req.Deriver)
			return
		}
		opts.Deriver = scheme
	}
	col, err := s.sys.CreateCollection(req.Name, req.Spec, opts)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrDuplicate) {
			status = http.StatusConflict
		}
		s.fail(w, status, "create collection: %v", err)
		return
	}
	indexed := 0
	if !req.NoIndex {
		if indexed, err = col.IndexObjects(); err != nil {
			s.sys.DropCollection(req.Name)
			s.fail(w, http.StatusBadRequest, "index collection: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"name":    req.Name,
		"indexed": indexed,
		"policy":  col.Policy().String(),
	})
}

func (s *Server) handleDropCollection(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.sys.DropCollection(name); err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	// A same-name recreate restarts the per-collection epoch near
	// zero, so search entries keyed under the old collection could
	// collide with it; drop everything.
	s.qcache().purge()
	writeJSON(w, http.StatusOK, map[string]any{"dropped": name})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	col, err := s.sys.Collection(r.PathValue("name"))
	if err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	pending := col.PendingOps()
	if err := col.Flush(); err != nil {
		s.fail(w, http.StatusInternalServerError, "flush: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"collection":  col.Name(),
		"pending_was": pending,
	})
}

// handleDrain blocks until every update logged before the request has
// been propagated — the visibility barrier for async ingest (202
// responses carry the watermark this drain guarantees).
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	col, err := s.sys.Collection(r.PathValue("name"))
	if err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	pending := col.PendingOps()
	s.stats.drains.Add(1)
	if err := col.Drain(); err != nil {
		s.fail(w, http.StatusInternalServerError, "drain: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"collection":        col.Name(),
		"pending_was":       pending,
		"applied_watermark": col.AppliedWatermark(),
		"epoch":             col.Epoch(),
	})
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	col, err := s.sys.Collection(r.PathValue("name"))
	if err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	var req struct {
		Query          string   `json:"query"`
		Relevant       []string `json:"relevant"`
		AddTerms       int      `json:"add_terms"`
		OriginalWeight float64  `json:"original_weight"`
	}
	if !s.decode(w, r, &req) {
		return
	}
	if req.Query == "" || len(req.Relevant) == 0 {
		s.fail(w, http.StatusBadRequest, "query and relevant are required")
		return
	}
	expanded, err := col.IRS().ExpandQuery(req.Query, req.Relevant, docirs.FeedbackOptions{
		AddTerms:       req.AddTerms,
		OriginalWeight: req.OriginalWeight,
	})
	if err != nil {
		s.fail(w, http.StatusBadRequest, "expand query: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"collection": col.Name(),
		"original":   req.Query,
		"expanded":   expanded,
	})
}

// --- search & query ------------------------------------------------

type searchHit struct {
	ID    string  `json:"id"`
	Score float64 `json:"score"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	q := r.URL.Query().Get("q")
	if q == "" {
		s.fail(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	limit := 0
	if l := r.URL.Query().Get("limit"); l != "" {
		var err error
		if limit, err = strconv.Atoi(l); err != nil || limit < 0 {
			s.fail(w, http.StatusBadRequest, "bad limit %q", l)
			return
		}
	}
	col, err := s.sys.Collection(name)
	if err != nil {
		s.fail(w, http.StatusNotFound, "%v", err)
		return
	}
	start := time.Now()
	s.qps.Record()
	s.stats.searches.Add(1)
	tr := trFrom(r)
	tr.SetDetail(q)
	tr.Attr("collection", name)
	defer func() {
		if obs.Enabled() {
			obs.Default.Histogram("mmf_collection_request_seconds",
				"collection", name).Observe(time.Since(start))
		}
	}()
	// The limit is pushed down into the IRS instead of truncating a
	// fully evaluated ranking: the engine streams candidates through
	// bounded per-shard heaps and prunes those whose score upper bound
	// cannot reach the k-th best. The cache stores the full k-bucket
	// result, so nearby limits under the same epoch share one
	// evaluation and slice their prefix from it.
	bucket := kBucket(limit)
	key := cacheKey{kind: "search", coll: name, query: q, epoch: col.Epoch(), kbucket: bucket}
	cache := s.qcache()
	var hits []searchHit
	cached := false
	if v, ok := cache.get(key); ok {
		hits = v.([]searchHit)
		cached = true
		s.stats.cacheHits.Add(1)
	} else if v, ok := s.cacheGetFull(cache, key); ok {
		// A cached exhaustive result serves any limit — its prefix is
		// exactly what the top-k engine would return.
		hits = v
		cached = true
		s.stats.cacheHits.Add(1)
	} else {
		s.stats.cacheMisses.Add(1)
		evalStart := time.Now()
		var results []docirs.SearchResult
		if bucket > 0 {
			results, err = s.sys.SearchTopKTraced(name, q, bucket, tr)
		} else {
			results, err = s.sys.Search(name, q)
		}
		if err != nil {
			s.fail(w, http.StatusBadRequest, "search: %v", err)
			return
		}
		hits = make([]searchHit, len(results))
		for i, res := range results {
			hits[i] = searchHit{ID: res.ExtID, Score: res.Score}
		}
		// The measured rebuild cost of this entry: evaluation latency
		// weighted by how many candidates the engine had to score (the
		// top-k path annotates the request trace). The +1 keeps pure
		// latency in play when the attr is absent — exhaustive
		// evaluations and untraced (obs-disabled) requests degrade to
		// latency-only cost rather than zero.
		scored, _ := tr.Int64Attr("candidates_scored")
		cost := time.Since(evalStart).Seconds() * float64(scored+1)
		cache.put(key, hits, cost)
		// A top-k evaluation that came back with fewer than its bucket
		// hits is provably exhaustive (the engine ran out of matches
		// before reaching k), so promote it to the unlimited slot too:
		// larger buckets and limit-0 requests then serve from it via
		// cacheGetFull instead of re-evaluating. The guard is load-
		// bearing — a full-bucket result is truncated at k, and parking
		// it under kbucket 0 would serve it to larger limits as if it
		// were the complete ranking, silently dropping hits.
		if bucket > 0 && len(hits) < bucket {
			full := key
			full.kbucket = 0
			cache.put(full, hits, cost)
		}
	}
	if cached {
		tr.Attr("cache", "hit")
	} else {
		tr.Attr("cache", "miss")
	}
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"collection": name,
		"query":      q,
		"results":    hits,
		"count":      len(hits),
		"cached":     cached,
		"elapsed_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
}

// cacheGetFull retries a bucketed search-cache miss against the
// unlimited entry (kbucket 0) of the same (collection, query, epoch):
// the exhaustive ranking's prefix answers every limit. It operates on
// the cache the caller already loaded so one request never straddles
// a concurrent policy swap.
func (s *Server) cacheGetFull(cache queryCacher, key cacheKey) ([]searchHit, bool) {
	if key.kbucket == 0 {
		return nil, false
	}
	key.kbucket = 0
	v, ok := cache.get(key)
	if !ok {
		return nil, false
	}
	return v.([]searchHit), true
}

// queryResult is the cacheable part of a query response.
type queryResult struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Query    string `json:"query"`
		Strategy string `json:"strategy"`
		Explain  bool   `json:"explain"`
	}
	if !s.decode(w, r, &req) {
		return
	}
	if req.Query == "" {
		s.fail(w, http.StatusBadRequest, "query is required")
		return
	}
	strategy, err := parseStrategy(req.Strategy)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Explain {
		plan, err := s.sys.ExplainQuery(req.Query, strategy)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "explain: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"query":    req.Query,
			"strategy": strategy.String(),
			"plan":     plan,
		})
		return
	}
	start := time.Now()
	s.qps.Record()
	s.stats.queries.Add(1)
	tr := trFrom(r)
	tr.SetDetail(req.Query)
	tr.Attr("strategy", strategy.String())
	key := cacheKey{kind: "query", strategy: strategy.String(), query: req.Query, epoch: s.sys.Epoch()}
	cache := s.qcache()
	var res *queryResult
	cached := false
	if v, ok := cache.get(key); ok {
		res = v.(*queryResult)
		cached = true
		s.stats.cacheHits.Add(1)
	} else {
		s.stats.cacheMisses.Add(1)
		evalStart := time.Now()
		rs, err := s.sys.QueryWithStrategy(req.Query, strategy)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "query: %v", err)
			return
		}
		res = &queryResult{Columns: rs.Columns, Rows: make([][]string, len(rs.Rows))}
		for i, row := range rs.Rows {
			cells := make([]string, len(row))
			for j, v := range row {
				cells[j] = v.String()
			}
			res.Rows[i] = cells
		}
		// VQL evaluation carries no candidates-scored annotation;
		// rebuild cost degrades to the measured latency.
		cache.put(key, res, time.Since(evalStart).Seconds())
	}
	if cached {
		tr.Attr("cache", "hit")
	} else {
		tr.Attr("cache", "miss")
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"columns":    res.Columns,
		"rows":       res.Rows,
		"count":      len(res.Rows),
		"strategy":   strategy.String(),
		"cached":     cached,
		"elapsed_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
}
