package server

import (
	"container/list"
	"sync"
)

// cacheKey identifies one cached evaluation result. The epoch
// component is the invalidation mechanism: it is the coupling-wide
// epoch for VQL queries and the per-collection epoch for raw IRS
// searches, both of which advance whenever the update log advances
// (see core.Coupling.Epoch / core.Collection.Epoch). A mutation
// therefore never requires walking the cache — entries cached under
// the old epoch become unreachable and are evicted by LRU order.
type cacheKey struct {
	kind     string // "query" or "search"
	coll     string // collection name; empty for VQL queries
	strategy string
	query    string
	epoch    uint64
}

// queryCache is a plain LRU over cacheKey. A capacity of 0 disables
// it (every get misses, every put is dropped).
type queryCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[cacheKey]*list.Element
}

type cacheEntry struct {
	key cacheKey
	val any
}

func newQueryCache(capacity int) *queryCache {
	return &queryCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[cacheKey]*list.Element),
	}
}

// get returns the cached value for k, marking it most recently used.
func (c *queryCache) get(k cacheKey) (any, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put stores v under k, evicting the least recently used entry when
// over capacity.
func (c *queryCache) put(k cacheKey, v any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = v
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, val: v})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the number of live entries.
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// purge empties the cache.
func (c *queryCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[cacheKey]*list.Element)
}
