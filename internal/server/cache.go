package server

import (
	"container/list"
	"sync"
	"time"
)

// cacheKey identifies one cached evaluation result. The epoch
// component is the invalidation mechanism: it is the coupling-wide
// epoch for VQL queries and the per-collection epoch for raw IRS
// searches, both of which advance whenever the update log advances
// (see core.Coupling.Epoch / core.Collection.Epoch). A mutation
// therefore never requires walking the cache — entries cached under
// the old epoch become unreachable and age out under eviction
// pressure or TTL.
//
// kbucket is the top-k component for searches: requests with a limit
// evaluate (and cache) the full k-bucket the limit rounds up to, so
// nearby limits share one streaming top-k evaluation instead of
// fragmenting the cache per distinct limit. 0 means unlimited (the
// exhaustive result).
type cacheKey struct {
	kind     string // "query" or "search"
	coll     string // collection name; empty for VQL queries
	strategy string
	query    string
	epoch    uint64
	kbucket  int
}

// kBucket rounds a client limit up to its cache bucket: 0 (no limit)
// stays 0, anything else rounds up to the next power of two, floored
// at minKBucket so tiny limits still share entries. Limits beyond
// maxKBucket degrade to the unlimited (exhaustive) path — the result
// is identical (the response is still truncated to the limit) and a
// hostile huge limit can neither overflow the doubling loop nor size
// a heap allocation.
func kBucket(limit int) int {
	if limit <= 0 || limit > maxKBucket {
		return 0
	}
	b := minKBucket
	for b < limit {
		b <<= 1
	}
	return b
}

// minKBucket is the smallest top-k evaluation size the server asks
// the engine for; limits below it are served from that bucket.
// maxKBucket is the largest: above it, exhaustive evaluation is at
// least as cheap as a near-corpus-sized heap.
const (
	minKBucket = 16
	maxKBucket = 1 << 16
)

// queryCacher is the policy-independent contract of the query cache.
// Both implementations (recency LRU, cost-aware 2Q) share it so the
// serving layer can swap policies at runtime (Server.SetCachePolicy)
// for A/B comparison without touching the handlers. put carries the
// measured rebuild cost of the entry (seconds × candidates scored,
// captured from the miss-path trace); the LRU ignores it beyond
// accounting.
type queryCacher interface {
	get(k cacheKey) (any, bool)
	put(k cacheKey, v any, cost float64)
	len() int
	purge()
	metrics() CacheMetrics
}

// CacheMetrics is a point-in-time snapshot of one cache's internal
// accounting, published by /stats, /metrics and Server.CacheMetrics.
// Hits and misses are split by reason: a probation hit is a 2Q entry
// proving reuse before promotion (always 0 for the LRU, which has a
// single segment), an expired miss found the key but past its TTL.
type CacheMetrics struct {
	Policy        string `json:"policy"`
	Entries       int    `json:"entries"`
	Capacity      int    `json:"capacity"`
	HitsMain      int64  `json:"hits_main"`
	HitsProbation int64  `json:"hits_probation"`
	MissesCold    int64  `json:"misses_cold"`
	MissesExpired int64  `json:"misses_expired"`
	// Promotions counts probation→main promotions, GhostReadmits
	// re-admissions of recently evicted keys straight into the main
	// segment, AdmissionRejects probationary entries dropped without
	// ever being re-referenced (the one-shot scans 2Q exists to keep
	// out of the main segment). All three are 0 for the LRU.
	Promotions       int64   `json:"promotions"`
	GhostReadmits    int64   `json:"ghost_readmits"`
	AdmissionRejects int64   `json:"admission_rejections"`
	Evictions        int64   `json:"evictions"`
	EvictedCost      float64 `json:"evicted_cost"`
	SweptExpired     int64   `json:"swept_expired"`
}

// cacheCounters is the mutable accounting shared by both cache
// implementations; all fields are guarded by the owning cache's mu.
type cacheCounters struct {
	hitsMain, hitsProbation     int64
	missesCold, missesExpired   int64
	promotions, ghostReadmits   int64
	admissionRejects, evictions int64
	evictedCost                 float64
	sweptExpired                int64
}

func (m *cacheCounters) snapshot(policy string, entries, capacity int) CacheMetrics {
	return CacheMetrics{
		Policy: policy, Entries: entries, Capacity: capacity,
		HitsMain: m.hitsMain, HitsProbation: m.hitsProbation,
		MissesCold: m.missesCold, MissesExpired: m.missesExpired,
		Promotions: m.promotions, GhostReadmits: m.ghostReadmits,
		AdmissionRejects: m.admissionRejects, Evictions: m.evictions,
		EvictedCost: m.evictedCost, SweptExpired: m.sweptExpired,
	}
}

// sweepBudget bounds how many resident entries one put examines for
// TTL expiry. The sweep walks a persistent cursor, so a full pass
// over a cache of C entries completes every C/sweepBudget puts —
// cold expired entries are reclaimed by ongoing write traffic alone,
// without ever being read again.
const sweepBudget = 8

// queryCache is an LRU over cacheKey with an optional TTL. A capacity
// of 0 disables it (every get misses, every put is dropped); a TTL of
// 0 never expires (epochs already invalidate on mutation — the TTL
// exists to bound staleness of results whose epoch component is
// expensive to advance, and to cap memory held by long-idle entries).
type queryCache struct {
	mu    sync.Mutex
	cap   int
	ttl   time.Duration
	now   func() time.Time
	ll    *list.List // front = most recently used
	items map[cacheKey]*list.Element
	sweep *list.Element // TTL-sweep cursor; nil restarts from the back
	m     cacheCounters
}

type cacheEntry struct {
	key     cacheKey
	val     any
	cost    float64
	expires time.Time // zero: never
}

func newQueryCache(capacity int, ttl time.Duration) *queryCache {
	return &queryCache{
		cap:   capacity,
		ttl:   ttl,
		now:   time.Now,
		ll:    list.New(),
		items: make(map[cacheKey]*list.Element),
	}
}

// get returns the cached value for k, marking it most recently used.
// Expired entries are evicted on access.
func (c *queryCache) get(k cacheKey) (any, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.m.missesCold++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.remove(el)
		c.m.missesExpired++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.m.hitsMain++
	return e.val, true
}

// put stores v under k, evicting the least recently used entry when
// over capacity. cost is recorded so evicted-cost accounting stays
// comparable with the cost-aware policy; it does not influence LRU
// eviction order.
func (c *queryCache) put(k cacheKey, v any, cost float64) {
	if c.cap <= 0 {
		return
	}
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.sweepExpired()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.val = v
		e.cost = cost
		e.expires = expires
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, val: v, cost: cost, expires: expires})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		e := oldest.Value.(*cacheEntry)
		c.remove(oldest)
		c.m.evictions++
		c.m.evictedCost += e.cost
	}
}

// remove unlinks el, stepping the sweep cursor off it first so the
// cursor never dangles into a removed element.
func (c *queryCache) remove(el *list.Element) {
	if c.sweep == el {
		c.sweep = el.Prev()
	}
	c.ll.Remove(el)
	delete(c.items, el.Value.(*cacheEntry).key)
}

// sweepExpired advances the TTL cursor up to sweepBudget entries from
// the LRU tail toward the front, reclaiming expired entries it
// passes. Piggybacked on every put: an idle burst's memory is
// released by later write traffic even when the expired keys are
// never requested again (they used to be evicted only on access,
// pinning their result slices until capacity pressure reached them).
// Caller holds c.mu.
func (c *queryCache) sweepExpired() {
	if c.ttl <= 0 {
		return
	}
	now := c.now()
	el := c.sweep
	if el == nil {
		el = c.ll.Back()
	}
	for i := 0; i < sweepBudget && el != nil; i++ {
		prev := el.Prev()
		if e := el.Value.(*cacheEntry); !e.expires.IsZero() && now.After(e.expires) {
			c.remove(el)
			c.m.sweptExpired++
		}
		el = prev
	}
	c.sweep = el // nil at the front: next sweep restarts from the back
}

// len returns the number of live entries.
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// purge empties the cache.
func (c *queryCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[cacheKey]*list.Element)
	c.sweep = nil
}

func (c *queryCache) metrics() CacheMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.snapshot(CachePolicyLRU, c.ll.Len(), c.cap)
}
