package server

import (
	"container/list"
	"sync"
	"time"
)

// cacheKey identifies one cached evaluation result. The epoch
// component is the invalidation mechanism: it is the coupling-wide
// epoch for VQL queries and the per-collection epoch for raw IRS
// searches, both of which advance whenever the update log advances
// (see core.Coupling.Epoch / core.Collection.Epoch). A mutation
// therefore never requires walking the cache — entries cached under
// the old epoch become unreachable and are evicted by LRU order.
//
// kbucket is the top-k component for searches: requests with a limit
// evaluate (and cache) the full k-bucket the limit rounds up to, so
// nearby limits share one streaming top-k evaluation instead of
// fragmenting the cache per distinct limit. 0 means unlimited (the
// exhaustive result).
type cacheKey struct {
	kind     string // "query" or "search"
	coll     string // collection name; empty for VQL queries
	strategy string
	query    string
	epoch    uint64
	kbucket  int
}

// kBucket rounds a client limit up to its cache bucket: 0 (no limit)
// stays 0, anything else rounds up to the next power of two, floored
// at minKBucket so tiny limits still share entries. Limits beyond
// maxKBucket degrade to the unlimited (exhaustive) path — the result
// is identical (the response is still truncated to the limit) and a
// hostile huge limit can neither overflow the doubling loop nor size
// a heap allocation.
func kBucket(limit int) int {
	if limit <= 0 || limit > maxKBucket {
		return 0
	}
	b := minKBucket
	for b < limit {
		b <<= 1
	}
	return b
}

// minKBucket is the smallest top-k evaluation size the server asks
// the engine for; limits below it are served from that bucket.
// maxKBucket is the largest: above it, exhaustive evaluation is at
// least as cheap as a near-corpus-sized heap.
const (
	minKBucket = 16
	maxKBucket = 1 << 16
)

// queryCache is an LRU over cacheKey with an optional TTL. A capacity
// of 0 disables it (every get misses, every put is dropped); a TTL of
// 0 never expires (epochs already invalidate on mutation — the TTL
// exists to bound staleness of results whose epoch component is
// expensive to advance, and to cap memory held by long-idle entries).
type queryCache struct {
	mu    sync.Mutex
	cap   int
	ttl   time.Duration
	ll    *list.List // front = most recently used
	items map[cacheKey]*list.Element
}

type cacheEntry struct {
	key     cacheKey
	val     any
	expires time.Time // zero: never
}

func newQueryCache(capacity int, ttl time.Duration) *queryCache {
	return &queryCache{
		cap:   capacity,
		ttl:   ttl,
		ll:    list.New(),
		items: make(map[cacheKey]*list.Element),
	}
}

// get returns the cached value for k, marking it most recently used.
// Expired entries are evicted on access.
func (c *queryCache) get(k cacheKey) (any, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if !e.expires.IsZero() && time.Now().After(e.expires) {
		c.ll.Remove(el)
		delete(c.items, k)
		return nil, false
	}
	c.ll.MoveToFront(el)
	return e.val, true
}

// put stores v under k, evicting the least recently used entry when
// over capacity.
func (c *queryCache) put(k cacheKey, v any) {
	if c.cap <= 0 {
		return
	}
	var expires time.Time
	if c.ttl > 0 {
		expires = time.Now().Add(c.ttl)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.val = v
		e.expires = expires
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, val: v, expires: expires})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	// Sweep expired entries off the LRU tail so an idle burst's
	// memory is released by later traffic, not only by capacity
	// pressure. Expired entries that were used recently (and thus sit
	// nearer the front) fall out on their own get or a later sweep.
	if c.ttl > 0 {
		now := time.Now()
		for el := c.ll.Back(); el != nil; {
			e := el.Value.(*cacheEntry)
			if e.expires.IsZero() || now.Before(e.expires) {
				break
			}
			prev := el.Prev()
			c.ll.Remove(el)
			delete(c.items, e.key)
			el = prev
		}
	}
}

// len returns the number of live entries.
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// purge empties the cache.
func (c *queryCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[cacheKey]*list.Element)
}
