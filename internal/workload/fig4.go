package workload

import "strings"

// Figure 4 fixture: the paper's exact four-document example.
//
//	M1: P1(WWW)  P2(-)    P3(-)
//	M2: P4(WWW+NII)  P5(-)
//	M3: P6(WWW)  P7(NII)  P8(-)
//	M4: P9(WWW)  P10(WWW) P11(-)
//
// "Suppose that only paragraphs are represented in the collection,
// that the terms 'WWW' and 'NII' are treated equally by the IRS, and
// that the paragraphs are of equal length." The generator honors all
// three assumptions: every paragraph has exactly the same length,
// and the WWW/NII plants are symmetric.

// Fig4DTD is the document type of the fixture (paragraphs directly
// below the document, as in the paper's fragment).
const Fig4DTD = `
<!ELEMENT MMFDOC   - -  (LOGBOOK, DOCTITLE, ABSTRACT, PARA+)>
<!ELEMENT LOGBOOK  - O  (#PCDATA)>
<!ELEMENT DOCTITLE - O  (#PCDATA)>
<!ELEMENT ABSTRACT - O  (#PCDATA)>
<!ELEMENT PARA     - O  (#PCDATA)>
<!ATTLIST MMFDOC YEAR NUMBER #IMPLIED>
`

// Fig4Doc describes one fixture document.
type Fig4Doc struct {
	Name  string
	SGML  string
	Paras []string // paragraph names P1..P11 in order
}

// Fig4Query is the example's content query.
const Fig4Query = "#and(www nii)"

// fig4Para renders one equal-length paragraph. Every paragraph has
// exactly eight terms: planted topic terms followed by unique filler
// (unique so background terms do not correlate the paragraphs).
func fig4Para(name string, www, nii int) string {
	var terms []string
	for i := 0; i < www; i++ {
		terms = append(terms, "www")
	}
	for i := 0; i < nii; i++ {
		terms = append(terms, "nii")
	}
	for i := len(terms); i < 8; i++ {
		terms = append(terms, "filler"+name+string(rune('a'+i)))
	}
	return strings.Join(terms, " ")
}

// Fig4Docs returns the four example documents. Every paragraph is
// exactly eight terms long; relevant paragraphs carry four planted
// occurrences per relevant term (P4: four www plus four nii, no
// filler), so all paragraphs are of equal length and both terms are
// treated equally — the example's stated assumptions.
func Fig4Docs() []Fig4Doc {
	paras := map[string]string{
		"P1":  fig4Para("p1", 4, 0),
		"P2":  fig4Para("p2", 0, 0),
		"P3":  fig4Para("p3", 0, 0),
		"P4":  fig4Para("p4", 4, 4),
		"P5":  fig4Para("p5", 0, 0),
		"P6":  fig4Para("p6", 4, 0),
		"P7":  fig4Para("p7", 0, 4),
		"P8":  fig4Para("p8", 0, 0),
		"P9":  fig4Para("p9", 4, 0),
		"P10": fig4Para("p10", 4, 0),
		"P11": fig4Para("p11", 0, 0),
	}
	layout := []struct {
		name  string
		paras []string
	}{
		{"M1", []string{"P1", "P2", "P3"}},
		{"M2", []string{"P4", "P5"}},
		{"M3", []string{"P6", "P7", "P8"}},
		{"M4", []string{"P9", "P10", "P11"}},
	}
	var docs []Fig4Doc
	for _, l := range layout {
		var sb strings.Builder
		sb.WriteString(`<MMFDOC YEAR="1994"><LOGBOOK>log<DOCTITLE>` + l.name + `<ABSTRACT>abs`)
		for _, p := range l.paras {
			sb.WriteString("\n<PARA>" + paras[p])
		}
		sb.WriteString("\n</MMFDOC>")
		docs = append(docs, Fig4Doc{Name: l.name, SGML: sb.String(), Paras: l.paras})
	}
	return docs
}

// Fig4Filler returns n background documents of three 8-term
// paragraphs each, built from unique non-topic words. The paper's
// example presupposes a real collection around M1..M4 (otherwise
// "www" occurs in 5 of 11 paragraphs and carries almost no idf
// discrimination); the filler provides that corpus context without
// touching the example's relevance structure.
func Fig4Filler(n int) []Fig4Doc {
	var docs []Fig4Doc
	for i := 0; i < n; i++ {
		var sb strings.Builder
		name := "F" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		sb.WriteString(`<MMFDOC YEAR="1993"><LOGBOOK>log<DOCTITLE>` + name + `<ABSTRACT>abs`)
		for p := 0; p < 3; p++ {
			sb.WriteString("\n<PARA>")
			for t := 0; t < 8; t++ {
				sb.WriteString("bg" + name + string(rune('a'+p)) + string(rune('a'+t)) + " ")
			}
		}
		sb.WriteString("\n</MMFDOC>")
		docs = append(docs, Fig4Doc{Name: name, SGML: sb.String()})
	}
	return docs
}

// Fig4Expectations documents the claims the experiment asserts.
//
//   - The IRS assigns the highest paragraph value to P4 ("the IRS
//     will assign the highest value to P4, because this is the only
//     IRS document relevant to both terms").
//   - Under the Max derivation, M2 ranks first but M3 and M4 tie
//     ("MMF documents M3 and M4 both contain two 'semi'-relevant
//     paragraphs. Their IRS values, however, should be different").
//   - Under the query-aware derivation, rank(M2) < rank(M3) <
//     rank(M4) (lower rank = better).
type Fig4Expectations struct{}
