package workload

import (
	"strings"
	"testing"

	"repro/internal/sgml"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Docs) != cfg.Docs || len(b.Docs) != cfg.Docs {
		t.Fatalf("doc counts: %d, %d", len(a.Docs), len(b.Docs))
	}
	for i := range a.Docs {
		if a.Docs[i].SGML != b.Docs[i].SGML {
			t.Fatalf("doc %d differs between runs with same seed", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 99
	c := Generate(cfg2)
	same := 0
	for i := range a.Docs {
		if a.Docs[i].SGML == c.Docs[i].SGML {
			same++
		}
	}
	if same == len(a.Docs) {
		t.Error("different seeds produced identical corpus")
	}
}

func TestGeneratedDocsParseStrictly(t *testing.T) {
	d, err := sgml.ParseDTD(MMFDTD)
	if err != nil {
		t.Fatal(err)
	}
	corpus := Generate(DefaultConfig())
	for i := range corpus.Docs {
		doc := &corpus.Docs[i]
		root, err := sgml.ParseDocument(d, doc.SGML, sgml.ParseOptions{Strict: true})
		if err != nil {
			t.Fatalf("%s does not parse: %v", doc.Name, err)
		}
		paras := root.ElementsByType("PARA")
		if len(paras) != doc.ParaCount {
			t.Errorf("%s: %d paras parsed, ground truth says %d", doc.Name, len(paras), doc.ParaCount)
		}
		// Planted paragraphs actually contain the topic terms.
		for topic, idxs := range doc.RelevantParas {
			var terms []string
			for _, tp := range corpus.Config.Topics {
				if tp.Name == topic {
					terms = tp.Terms
				}
			}
			for _, idx := range idxs {
				text := paras[idx].InnerText()
				found := false
				for _, term := range terms {
					if strings.Contains(text, term) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s para %d claims topic %s but carries no term", doc.Name, idx, topic)
				}
			}
		}
	}
}

func TestGroundTruthHelpers(t *testing.T) {
	corpus := Generate(DefaultConfig())
	if corpus.TotalParas() <= 0 {
		t.Error("no paragraphs")
	}
	if corpus.TextBytes() <= 0 {
		t.Error("no text volume")
	}
	rel := corpus.RelevantDocs("WWW")
	if len(rel) == 0 || len(rel) == len(corpus.Docs) {
		t.Errorf("WWW relevance degenerate: %d of %d", len(rel), len(corpus.Docs))
	}
}

func TestFig4Fixture(t *testing.T) {
	d, err := sgml.ParseDTD(Fig4DTD)
	if err != nil {
		t.Fatal(err)
	}
	docs := Fig4Docs()
	if len(docs) != 4 {
		t.Fatalf("fixture has %d docs", len(docs))
	}
	totalParas := 0
	for _, doc := range docs {
		root, err := sgml.ParseDocument(d, doc.SGML, sgml.ParseOptions{Strict: true})
		if err != nil {
			t.Fatalf("%s: %v", doc.Name, err)
		}
		paras := root.ElementsByType("PARA")
		if len(paras) != len(doc.Paras) {
			t.Errorf("%s: %d paras, want %d", doc.Name, len(paras), len(doc.Paras))
		}
		totalParas += len(paras)
		// All paragraphs equal length (the example's assumption).
		for _, p := range paras {
			if got := len(strings.Fields(p.InnerText())); got != 8 {
				t.Errorf("%s: paragraph length %d, want 8", doc.Name, got)
			}
		}
	}
	if totalParas != 11 {
		t.Errorf("total paragraphs = %d, want 11 (P1..P11)", totalParas)
	}
	joined := ""
	for _, doc := range docs {
		joined += doc.SGML + "\n"
	}
	if strings.Count(joined, "www") != 5*4 {
		t.Errorf("www plants = %d, want 20 (P1,P4,P6,P9,P10 x4)", strings.Count(joined, "www"))
	}
	if strings.Count(joined, "nii") != 2*4 {
		t.Errorf("nii plants = %d, want 8 (P4,P7 x4)", strings.Count(joined, "nii"))
	}
}

func TestQueryHelpers(t *testing.T) {
	topics := DefaultTopics()
	if q := QueryForTopic(topics[0]); q != "www" {
		t.Errorf("QueryForTopic = %q", q)
	}
	if q := AndQuery(topics[0], topics[1]); q != "#and(www nii)" {
		t.Errorf("AndQuery = %q", q)
	}
}
