// Package workload generates the synthetic MultiMedia Forum corpus
// used by the experiments. The paper evaluates on MMF [Sül+94], an
// interactive online journal at GMD-IPSI whose corpus is not
// available; this generator produces structurally equivalent SGML
// documents (logbook, title, abstract, sections of paragraphs) with
// a Zipfian background vocabulary and PLANTED topics, so that every
// experiment has ground-truth relevance at both paragraph and
// document granularity. Generation is fully deterministic per seed.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// MMFDTD is the MMF-like document type used throughout the
// experiments. It extends the paper's fragment (Section 4.3) with a
// SECTION level so granularity experiments have an intermediate
// level between document and paragraph.
const MMFDTD = `
<!-- Synthetic MultiMedia Forum document type -->
<!ELEMENT MMFDOC   - -  (LOGBOOK, DOCTITLE, ABSTRACT, SECTION+)>
<!ELEMENT LOGBOOK  - O  (#PCDATA)>
<!ELEMENT DOCTITLE - O  (#PCDATA)>
<!ELEMENT ABSTRACT - O  (#PCDATA)>
<!ELEMENT SECTION  - O  (STITLE, PARA+)>
<!ELEMENT STITLE   - O  (#PCDATA)>
<!ELEMENT PARA     - O  (#PCDATA)>
<!ATTLIST MMFDOC
    YEAR   NUMBER #IMPLIED
    AUTHOR CDATA  #IMPLIED
    KIND   (report | review | news) "report">
`

// Topic is a plantable subject with its query terms.
type Topic struct {
	Name  string
	Terms []string
}

// DefaultTopics mirror the paper's running example ("WWW", "NII")
// plus additional topics for multi-topic workloads.
func DefaultTopics() []Topic {
	return []Topic{
		{Name: "WWW", Terms: []string{"www", "web", "hypertext"}},
		{Name: "NII", Terms: []string{"nii", "infrastructure", "highway"}},
		{Name: "SGML", Terms: []string{"sgml", "markup", "dtd"}},
		{Name: "VIDEO", Terms: []string{"video", "codec", "stream"}},
	}
}

// Config parameterizes corpus generation.
type Config struct {
	Docs          int
	SectionsRange [2]int // min,max sections per document
	ParasRange    [2]int // min,max paragraphs per section
	WordsRange    [2]int // min,max background words per paragraph
	Vocabulary    int    // background vocabulary size
	Topics        []Topic
	// TopicDocShare is the fraction of documents carrying each topic
	// (each topic drawn independently).
	TopicDocShare float64
	// TopicParaShare is the fraction of a carrying document's
	// paragraphs that mention the topic.
	TopicParaShare float64
	// TopicDensity is the number of topic-term occurrences planted
	// per relevant paragraph.
	TopicDensity int
	Seed         int64
	YearRange    [2]int
}

// DefaultConfig returns a corpus configuration sized for experiments
// that run in seconds.
func DefaultConfig() Config {
	return Config{
		Docs:           40,
		SectionsRange:  [2]int{2, 4},
		ParasRange:     [2]int{2, 5},
		WordsRange:     [2]int{15, 40},
		Vocabulary:     800,
		Topics:         DefaultTopics(),
		TopicDocShare:  0.3,
		TopicParaShare: 0.4,
		TopicDensity:   4,
		Seed:           42,
		YearRange:      [2]int{1992, 1995},
	}
}

// Document is one generated document with its ground truth.
type Document struct {
	Name string // D001, D002, ...
	SGML string
	Year int
	Kind string
	// RelevantParas maps topic name -> indexes (in document order,
	// counting across sections) of paragraphs carrying the topic.
	RelevantParas map[string][]int
	// ParaCount is the total number of paragraphs.
	ParaCount int
}

// RelevantTo reports whether the document carries the topic at all.
func (d *Document) RelevantTo(topic string) bool {
	return len(d.RelevantParas[topic]) > 0
}

// Corpus is a generated document set with ground truth.
type Corpus struct {
	Config Config
	Docs   []Document
}

// TotalParas returns the number of paragraphs in the corpus.
func (c *Corpus) TotalParas() int {
	n := 0
	for i := range c.Docs {
		n += c.Docs[i].ParaCount
	}
	return n
}

// RelevantDocs returns the names of documents relevant to the topic.
func (c *Corpus) RelevantDocs(topic string) []string {
	var out []string
	for i := range c.Docs {
		if c.Docs[i].RelevantTo(topic) {
			out = append(out, c.Docs[i].Name)
		}
	}
	return out
}

// TextBytes returns the total character-data volume of the corpus
// (redundancy baselines divide index text volume by this).
func (c *Corpus) TextBytes() int64 {
	var n int64
	for i := range c.Docs {
		n += int64(len(c.Docs[i].SGML))
	}
	return n
}

// Generate produces a deterministic corpus for the configuration.
func Generate(cfg Config) *Corpus {
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, 1.2, 1.0, uint64(cfg.Vocabulary-1))
	word := func() string {
		return fmt.Sprintf("w%03d", zipf.Uint64())
	}
	span := func(r [2]int) int {
		if r[1] <= r[0] {
			return r[0]
		}
		return r[0] + rng.Intn(r[1]-r[0]+1)
	}
	kinds := []string{"report", "review", "news"}

	corpus := &Corpus{Config: cfg}
	for d := 0; d < cfg.Docs; d++ {
		doc := Document{
			Name:          fmt.Sprintf("D%03d", d+1),
			Year:          cfg.YearRange[0] + rng.Intn(cfg.YearRange[1]-cfg.YearRange[0]+1),
			Kind:          kinds[rng.Intn(len(kinds))],
			RelevantParas: make(map[string][]int),
		}
		// Decide topic carriage up front.
		carrying := make([]Topic, 0, len(cfg.Topics))
		for _, topic := range cfg.Topics {
			if rng.Float64() < cfg.TopicDocShare {
				carrying = append(carrying, topic)
			}
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, `<MMFDOC YEAR="%d" AUTHOR="author%02d" KIND="%s">%s`,
			doc.Year, rng.Intn(12)+1, doc.Kind, "\n")
		fmt.Fprintf(&sb, "<LOGBOOK>created %d revision %d\n", doc.Year, rng.Intn(9)+1)
		fmt.Fprintf(&sb, "<DOCTITLE>%s %s issue %d\n", doc.Name, word(), d+1)
		fmt.Fprintf(&sb, "<ABSTRACT>abstract %s %s %s\n", word(), word(), word())
		paraIdx := 0
		sections := span(cfg.SectionsRange)
		for sec := 0; sec < sections; sec++ {
			fmt.Fprintf(&sb, "<SECTION><STITLE>section %s %d\n", word(), sec+1)
			paras := span(cfg.ParasRange)
			for p := 0; p < paras; p++ {
				sb.WriteString("<PARA>")
				words := span(cfg.WordsRange)
				for w := 0; w < words; w++ {
					sb.WriteString(word())
					sb.WriteByte(' ')
				}
				for _, topic := range carrying {
					if rng.Float64() >= cfg.TopicParaShare {
						continue
					}
					doc.RelevantParas[topic.Name] = append(doc.RelevantParas[topic.Name], paraIdx)
					for i := 0; i < cfg.TopicDensity; i++ {
						sb.WriteString(topic.Terms[rng.Intn(len(topic.Terms))])
						sb.WriteByte(' ')
					}
				}
				sb.WriteByte('\n')
				paraIdx++
			}
		}
		sb.WriteString("</MMFDOC>")
		doc.ParaCount = paraIdx
		doc.SGML = sb.String()
		corpus.Docs = append(corpus.Docs, doc)
	}
	return corpus
}

// QueryForTopic renders the standard IRS query for a topic: the
// conjunction of its lead term with the disjunction of the others
// would over-complicate comparisons, so experiments query the lead
// term (single-term) or #and pairs via AndQuery.
func QueryForTopic(t Topic) string { return t.Terms[0] }

// AndQuery renders the paper's two-topic conjunction (the Figure 4
// query shape "#and(WWW NII)").
func AndQuery(a, b Topic) string {
	return fmt.Sprintf("#and(%s %s)", a.Terms[0], b.Terms[0])
}
