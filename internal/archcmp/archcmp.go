// Package archcmp implements the three loose-coupling architectures
// of Figure 1 side by side, so EXP-F1 can compare them on the same
// corpus and workload:
//
//	(1) control module   — a third component coordinates OODBMS and
//	    IRS (COINS [CST92], HYDRA [GTZ93]); the mixed query is split
//	    by the module, both parts evaluated, results joined in the
//	    module (HYDRA's temporary table).
//	(2) IRS as control   — the application talks to the IRS; the
//	    database is reachable only through per-object callbacks, so
//	    structural conditions are verified one retrieved object at a
//	    time.
//	(3) DBMS as control  — the paper's choice: the mixed query is a
//	    VQL statement; content predicates reach the IRS through the
//	    coupling (with its persistent result buffer).
//
// All three produce identical result sets for the benchmark query
// family (asserted by tests); they differ in expressiveness and in
// where the work happens.
package archcmp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/docmodel"
	"repro/internal/irs"
	"repro/internal/oodb"
	"repro/internal/vql"
)

// MixedQuery is the benchmark query family: "documents from YEAR
// containing a paragraph with IRS value above THRESHOLD for QUERY"
// — the shape of the paper's second example (Section 4.4).
type MixedQuery struct {
	Year      string
	IRSQuery  string
	Threshold float64
}

// Capabilities records what a coupling architecture can express or
// provide without modification — the qualitative axes of Section 3.
type Capabilities struct {
	// DeclarativeMixedQueries: mixed queries in one declarative
	// language with full query-processing (analyze/evaluate/
	// optimize).
	DeclarativeMixedQueries bool
	// StructuralJoins: joins over structure (e.g. the getNext
	// sibling join) combined with content predicates.
	StructuralJoins bool
	// ResultBuffering: IRS results reusable across queries.
	ResultBuffering bool
	// DBMSFeaturesForFree: concurrency control, recovery and schema
	// apply to the coupling bookkeeping itself.
	DBMSFeaturesForFree bool
	// NoKernelChanges: neither system's kernel needs modification.
	NoKernelChanges bool
}

// Architecture evaluates mixed queries against a prepared corpus.
type Architecture interface {
	Name() string
	// Run returns the OIDs of matching documents, ascending.
	Run(q MixedQuery) ([]oodb.OID, error)
	Capabilities() Capabilities
}

// DBMSControl is architecture (3): queries go through VQL and the
// coupling (the system under reproduction).
type DBMSControl struct {
	Coupling *core.Coupling
	// CollectionName is the paragraph collection to query.
	CollectionName string
	Strategy       vql.Strategy
}

// Name implements Architecture.
func (a *DBMSControl) Name() string { return "dbms-control" }

// Capabilities implements Architecture.
func (a *DBMSControl) Capabilities() Capabilities {
	return Capabilities{
		DeclarativeMixedQueries: true,
		StructuralJoins:         true,
		ResultBuffering:         true,
		DBMSFeaturesForFree:     true,
		NoKernelChanges:         true,
	}
}

// Run implements Architecture.
func (a *DBMSControl) Run(q MixedQuery) ([]oodb.OID, error) {
	src := fmt.Sprintf(
		`ACCESS DISTINCT d FROM d IN MMFDOC, p IN PARA WHERE d -> getAttributeValue('YEAR') = '%s' AND p -> getContaining('MMFDOC') == d AND p -> getIRSValue(%s, '%s') > %g;`,
		q.Year, a.CollectionName, q.IRSQuery, q.Threshold)
	ev := a.Coupling.Evaluator()
	rs, err := ev.RunWithStrategy(src, a.Strategy)
	if err != nil {
		return nil, err
	}
	var out []oodb.OID
	for _, row := range rs.Rows {
		out = append(out, row[0].Ref)
	}
	return oodb.SortOIDs(out), nil
}

// ControlModule is architecture (1): a separate module splits the
// query, sends the content part to the IRS and the structure part to
// the DBMS, and joins the two intermediate results itself.
type ControlModule struct {
	DB      *oodb.DB
	Store   *docmodel.Store
	IRSColl *irs.Collection
}

// Name implements Architecture.
func (a *ControlModule) Name() string { return "control-module" }

// Capabilities implements Architecture.
func (a *ControlModule) Capabilities() Capabilities {
	return Capabilities{
		// Expressiveness "depends on the capacity of the control
		// module": only the query shapes the module implements.
		DeclarativeMixedQueries: false,
		StructuralJoins:         false,
		ResultBuffering:         false,
		DBMSFeaturesForFree:     false,
		NoKernelChanges:         true,
	}
}

// Run implements Architecture.
func (a *ControlModule) Run(q MixedQuery) ([]oodb.OID, error) {
	// Content part straight to the IRS (no buffer — the module has
	// no persistent state of its own).
	hits, err := a.IRSColl.Search(q.IRSQuery)
	if err != nil {
		return nil, err
	}
	// Structure part to the DBMS: scan the MMFDOC extent.
	yearDocs := make(map[oodb.OID]bool)
	for _, d := range a.DB.Extent("MMFDOC", true) {
		if v, ok := a.DB.Attr(d, "@YEAR"); ok && v.Str == q.Year {
			yearDocs[d] = true
		}
	}
	// Join in the module (the "temporary table").
	seen := make(map[oodb.OID]bool)
	var out []oodb.OID
	for _, h := range hits {
		if h.Score <= q.Threshold {
			continue
		}
		para, err := oodb.ParseOID(h.ExtID)
		if err != nil {
			continue
		}
		doc := a.Store.Containing(para, "MMFDOC")
		if doc != oodb.NilOID && yearDocs[doc] && !seen[doc] {
			seen[doc] = true
			out = append(out, doc)
		}
	}
	return oodb.SortOIDs(out), nil
}

// IRSControl is architecture (2): the application addresses the IRS;
// the database is visible only through per-object callbacks, so each
// retrieved paragraph triggers a chain of attribute fetches to
// verify the structural condition.
type IRSControl struct {
	DB      *oodb.DB
	IRSColl *irs.Collection
}

// Name implements Architecture.
func (a *IRSControl) Name() string { return "irs-control" }

// Capabilities implements Architecture.
func (a *IRSControl) Capabilities() Capabilities {
	return Capabilities{
		DeclarativeMixedQueries: false,
		StructuralJoins:         false,
		ResultBuffering:         false,
		// "the control component's architecture is not laid out for
		// database functionality".
		DBMSFeaturesForFree: false,
		// Extending a conventional IRS this far "would require major
		// changes with regard to its architecture".
		NoKernelChanges: false,
	}
}

// Run implements Architecture.
func (a *IRSControl) Run(q MixedQuery) ([]oodb.OID, error) {
	hits, err := a.IRSColl.Search(q.IRSQuery)
	if err != nil {
		return nil, err
	}
	seen := make(map[oodb.OID]bool)
	var out []oodb.OID
	for _, h := range hits {
		if h.Score <= q.Threshold {
			continue
		}
		para, err := oodb.ParseOID(h.ExtID)
		if err != nil {
			continue
		}
		// Per-hit callback chain: walk parent pointers one attribute
		// fetch at a time (no set-oriented access available).
		doc := para
		for {
			v, ok := a.DB.Attr(doc, docmodel.AttrParent)
			if !ok || v.Kind != oodb.KindOID || v.Ref == oodb.NilOID {
				break
			}
			doc = v.Ref
		}
		if tv, _ := a.DB.Attr(doc, docmodel.AttrType); tv.Str != "MMFDOC" {
			continue
		}
		if yv, ok := a.DB.Attr(doc, "@YEAR"); !ok || yv.Str != q.Year {
			continue
		}
		if !seen[doc] {
			seen[doc] = true
			out = append(out, doc)
		}
	}
	return oodb.SortOIDs(out), nil
}
