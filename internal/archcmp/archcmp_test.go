package archcmp

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/docmodel"
	"repro/internal/irs"
	"repro/internal/oodb"
	"repro/internal/sgml"
	"repro/internal/vql"
	"repro/internal/workload"
)

type rig struct {
	db       *oodb.DB
	store    *docmodel.Store
	engine   *irs.Engine
	coupling *core.Coupling
	coll     *core.Collection
	corpus   *workload.Corpus
}

func buildRig(t *testing.T) *rig {
	t.Helper()
	db, err := oodb.Open("", oodb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store, err := docmodel.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	engine := irs.NewEngine()
	coupling, err := core.New(store, engine)
	if err != nil {
		t.Fatal(err)
	}
	dtd, err := sgml.ParseDTD(workload.MMFDTD)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.LoadDTD(dtd); err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig()
	cfg.Docs = 20
	corpus := workload.Generate(cfg)
	for i := range corpus.Docs {
		tree, err := sgml.ParseDocument(dtd, corpus.Docs[i].SGML, sgml.ParseOptions{Strict: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := store.InsertDocument(dtd, tree); err != nil {
			t.Fatal(err)
		}
	}
	coll, err := coupling.CreateCollection("collPara", "ACCESS p FROM p IN PARA;", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coll.IndexObjects(); err != nil {
		t.Fatal(err)
	}
	return &rig{db: db, store: store, engine: engine, coupling: coupling, coll: coll, corpus: corpus}
}

func architectures(r *rig) []Architecture {
	return []Architecture{
		&DBMSControl{Coupling: r.coupling, CollectionName: "collPara", Strategy: vql.StrategyAuto},
		&ControlModule{DB: r.db, Store: r.store, IRSColl: r.coll.IRS()},
		&IRSControl{DB: r.db, IRSColl: r.coll.IRS()},
	}
}

func TestArchitecturesAgree(t *testing.T) {
	r := buildRig(t)
	queries := []MixedQuery{
		{Year: "1994", IRSQuery: "www", Threshold: 0.45},
		{Year: "1995", IRSQuery: "nii", Threshold: 0.45},
		{Year: "1993", IRSQuery: "sgml", Threshold: 0.5},
		{Year: "1992", IRSQuery: "video", Threshold: 0.42},
		{Year: "1994", IRSQuery: "nosuchterm", Threshold: 0.4},
	}
	archs := architectures(r)
	for _, q := range queries {
		var results [][]oodb.OID
		for _, a := range archs {
			got, err := a.Run(q)
			if err != nil {
				t.Fatalf("%s on %+v: %v", a.Name(), q, err)
			}
			results = append(results, got)
		}
		for i := 1; i < len(results); i++ {
			if !reflect.DeepEqual(results[0], results[i]) {
				t.Errorf("query %+v: %s = %v, %s = %v",
					q, archs[0].Name(), results[0], archs[i].Name(), results[i])
			}
		}
	}
}

func TestArchitecturesNonTrivialResults(t *testing.T) {
	r := buildRig(t)
	arch := &DBMSControl{Coupling: r.coupling, CollectionName: "collPara", Strategy: vql.StrategyAuto}
	nonEmpty := 0
	for _, year := range []string{"1992", "1993", "1994", "1995"} {
		got, err := arch.Run(MixedQuery{Year: year, IRSQuery: "www", Threshold: 0.45})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Error("benchmark queries all empty; corpus or thresholds broken")
	}
}

func TestCapabilitiesMatrix(t *testing.T) {
	r := buildRig(t)
	caps := make(map[string]Capabilities)
	for _, a := range architectures(r) {
		caps[a.Name()] = a.Capabilities()
	}
	dbms := caps["dbms-control"]
	if !dbms.DeclarativeMixedQueries || !dbms.StructuralJoins || !dbms.ResultBuffering {
		t.Errorf("dbms-control capabilities wrong: %+v", dbms)
	}
	if caps["control-module"].DeclarativeMixedQueries {
		t.Error("control-module should not claim declarative mixed queries")
	}
	if caps["irs-control"].NoKernelChanges {
		t.Error("irs-control requires kernel changes per the paper")
	}
}

// The buffering advantage of DBMS-control: repeated queries hit the
// coupling's persistent buffer, while the control module re-runs the
// IRS each time.
func TestDBMSControlBuffersAcrossQueries(t *testing.T) {
	r := buildRig(t)
	arch := &DBMSControl{Coupling: r.coupling, CollectionName: "collPara", Strategy: vql.StrategyAuto}
	q := MixedQuery{Year: "1994", IRSQuery: "www", Threshold: 0.45}
	if _, err := arch.Run(q); err != nil {
		t.Fatal(err)
	}
	searches := r.coll.Stats().Snapshot().IRSSearches
	for i := 0; i < 5; i++ {
		if _, err := arch.Run(q); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.coll.Stats().Snapshot().IRSSearches; got != searches {
		t.Errorf("IRS evaluated %d more times despite warm buffer", got-searches)
	}
}

func ExampleMixedQuery() {
	fmt.Println(MixedQuery{Year: "1994", IRSQuery: "www", Threshold: 0.6})
	// Output: {1994 www 0.6}
}
