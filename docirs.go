// Package docirs is the public face of the OODBMS-IRS coupling
// library — a from-scratch Go reproduction of Volz, Aberer and Böhm,
// "Applying a Flexible OODBMS-IRS-Coupling to Structured Document
// Handling" (ICDE 1996).
//
// A System bundles the three layers of the paper's architecture:
//
//   - an object-oriented database (the VODAK role) storing SGML
//     documents fragmented into trees of objects,
//   - an information-retrieval engine (the INQUERY role) holding an
//     arbitrary number of document collections, and
//   - the coupling, with the OODBMS as control component: document
//     collections are defined by VQL specification queries, objects
//     expose getText/getIRSValue/deriveIRSValue, IRS results are
//     buffered persistently, and updates propagate under a
//     configurable policy.
//
// Quick start:
//
//	sys, _ := docirs.Open("")                      // memory-only
//	dtd, _ := sys.LoadDTD(workload.MMFDTD)
//	sys.LoadDocument(dtd, sgmlText)
//	coll, _ := sys.CreateCollection("collPara",
//	    "ACCESS p FROM p IN PARA;", docirs.CollectionOptions{})
//	coll.IndexObjects()
//	rs, _ := sys.Query(`ACCESS p FROM p IN PARA
//	    WHERE p -> getIRSValue(collPara, 'WWW') > 0.6;`)
package docirs

import (
	"errors"
	"fmt"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/docmodel"
	"repro/internal/irs"
	"repro/internal/obs"
	"repro/internal/oodb"
	"repro/internal/sgml"
	"repro/internal/vql"
	"repro/internal/wal"
)

// Re-exported types so applications program against one package.
type (
	// OID identifies a database object.
	OID = oodb.OID
	// Value is a database attribute value.
	Value = oodb.Value
	// Collection is the runtime face of a COLLECTION object.
	Collection = core.Collection
	// CollectionOptions configures CreateCollection.
	CollectionOptions = core.Options
	// PropagationPolicy bounds update-propagation time.
	PropagationPolicy = core.PropagationPolicy
	// ResultSet is the output of a VQL query.
	ResultSet = vql.ResultSet
	// Strategy selects the mixed-query evaluation strategy.
	Strategy = vql.Strategy
	// DTD is a parsed document type definition.
	DTD = sgml.DTD
	// SearchResult is one IRS retrieval result.
	SearchResult = irs.Result
	// FeedbackOptions tunes Rocchio-style query expansion
	// (Collection.IRS().ExpandQuery).
	FeedbackOptions = irs.FeedbackOptions
	// RecoveryReport summarizes one collection's WAL crash recovery
	// (System.RecoveryReports).
	RecoveryReport = irs.RecoveryReport
)

// Propagation policies (Section 4.6; PropagateAsync adds the
// background group-commit flusher).
const (
	PropagateOnQuery     = core.PropagateOnQuery
	PropagateImmediately = core.PropagateImmediately
	PropagateManually    = core.PropagateManually
	PropagateAsync       = core.PropagateAsync
)

// ParsePolicy maps a policy name ("on-query", "immediate", "manual",
// "async"; "" selects on-query) to its PropagationPolicy — the
// inverse of PropagationPolicy.String, shared by every flag and
// request parser.
func ParsePolicy(name string) (PropagationPolicy, error) {
	switch name {
	case "", "on-query":
		return PropagateOnQuery, nil
	case "immediate":
		return PropagateImmediately, nil
	case "manual":
		return PropagateManually, nil
	case "async":
		return PropagateAsync, nil
	}
	return PropagateOnQuery, fmt.Errorf("unknown policy %q (want on-query, immediate, manual or async)", name)
}

// Mixed-query evaluation strategies (Section 4.5.3).
const (
	StrategyAuto        = vql.StrategyAuto
	StrategyIndependent = vql.StrategyIndependent
	StrategyIRSFirst    = vql.StrategyIRSFirst
)

// Text representation modes for getText (Section 4.3).
const (
	ModeFullText = docmodel.ModeFullText
	ModeAbstract = docmodel.ModeAbstract
	ModeOwnText  = docmodel.ModeOwnText
)

// System is an assembled coupling instance.
type System struct {
	db       *oodb.DB
	store    *docmodel.Store
	engine   *irs.Engine
	coupling *core.Coupling
}

// OpenOptions configures Open/OpenWith beyond the storage directory.
type OpenOptions struct {
	// MappedIRS serves persisted IRS collections from read-only memory
	// mappings instead of loading posting data onto the heap (see
	// irs.Options.Mapped): open cost and heap footprint track the
	// dictionary/document tables, not the postings. Ignored in memory
	// mode. Rankings are identical either way.
	MappedIRS bool

	// NoWAL disables the per-collection IRS write-ahead log. Persistent
	// systems carry one by default: every propagation flush is logged
	// and fsynced (per WALFsync) before it commits, and open replays the
	// committed log tail onto the last snapshot — acknowledged updates
	// survive a crash. Ignored in memory mode.
	NoWAL bool

	// WALDir overrides where collection logs live (default: alongside
	// the IRS snapshots under dir/irs).
	WALDir string

	// WALFsync selects the log's fsync policy: "group" (default —
	// fsyncs ride the ingest coalescing window, one sync covers a
	// commit group), "always" (fsync every append) or "off" (leave
	// durability to the OS page cache).
	WALFsync string
}

// Open assembles a system. With dir == "" everything lives in
// memory; otherwise the database persists under dir (WAL + snapshot)
// and IRS collections under dir/irs.
func Open(dir string) (*System, error) {
	return OpenWith(dir, OpenOptions{})
}

// OpenWith assembles a system with explicit options.
func OpenWith(dir string, opts OpenOptions) (*System, error) {
	var (
		db     *oodb.DB
		engine *irs.Engine
		err    error
	)
	if dir == "" {
		db, err = oodb.Open("", oodb.Options{})
		if err != nil {
			return nil, err
		}
		engine = irs.NewEngine()
	} else {
		db, err = oodb.Open(dir, oodb.Options{SyncWAL: true})
		if err != nil {
			return nil, err
		}
		fsync, perr := wal.ParseSyncPolicy(opts.WALFsync)
		if perr != nil {
			db.Close()
			return nil, perr
		}
		engine, err = irs.NewEngineAt(filepath.Join(dir, "irs"), irs.Options{
			Mapped:   opts.MappedIRS,
			WAL:      !opts.NoWAL,
			WALDir:   opts.WALDir,
			WALFsync: fsync,
		})
		if err != nil {
			db.Close()
			return nil, err
		}
	}
	store, err := docmodel.Open(db)
	if err != nil {
		engine.Close()
		db.Close()
		return nil, err
	}
	coupling, err := core.New(store, engine)
	if err != nil {
		engine.Close()
		db.Close()
		return nil, err
	}
	return &System{db: db, store: store, engine: engine, coupling: coupling}, nil
}

// Close checkpoints and closes the system (persistent mode saves the
// IRS collections as well). Background flushers are stopped and
// pending update propagation is flushed first, so the saved IRS state
// is the fully propagated one. A final-flush failure does not abort
// the shutdown: the engine is still saved (committed index state is
// worth persisting) and the database still checkpointed and closed;
// all errors are joined into the result.
func (s *System) Close() error {
	var errs []error
	if err := s.coupling.Close(); err != nil {
		errs = append(errs, err)
	}
	if err := s.engine.Save(); err != nil {
		errs = append(errs, err)
	}
	// After the save (which folds any mapped-plus-overlay state into
	// fresh v5 files), release the collections' file mappings. The
	// coupling is already closed, so no queries are in flight.
	if err := s.engine.Close(); err != nil {
		errs = append(errs, err)
	}
	if err := s.db.Checkpoint(); err != nil && err != oodb.ErrClosed {
		errs = append(errs, err)
	}
	if err := s.db.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// DB exposes the object store.
func (s *System) DB() *oodb.DB { return s.db }

// Store exposes the document framework.
func (s *System) Store() *docmodel.Store { return s.store }

// Engine exposes the IRS engine.
func (s *System) Engine() *irs.Engine { return s.engine }

// Coupling exposes the coupling layer.
func (s *System) Coupling() *core.Coupling { return s.coupling }

// LoadDTD parses DTD text and defines one element-type class per
// declared element.
func (s *System) LoadDTD(src string) (*DTD, error) {
	d, err := sgml.ParseDTD(src)
	if err != nil {
		return nil, err
	}
	if err := s.store.LoadDTD(d); err != nil {
		return nil, err
	}
	return d, nil
}

// LoadDocument parses SGML text against the DTD (with omitted-tag
// inference) and stores it as a tree of database objects, returning
// the root object.
func (s *System) LoadDocument(d *DTD, sgmlText string) (OID, error) {
	tree, err := sgml.ParseDocument(d, sgmlText, sgml.ParseOptions{Strict: true})
	if err != nil {
		return 0, err
	}
	return s.store.InsertDocument(d, tree)
}

// DeleteDocument removes a document (or any element subtree).
func (s *System) DeleteDocument(root OID) error {
	return s.store.DeleteDocument(root)
}

// SetText replaces the raw text of a text-leaf object; the change
// propagates to affected collections under their policies.
func (s *System) SetText(leaf OID, text string) error {
	return s.store.SetText(leaf, text)
}

// CreateCollection creates a document collection whose members are
// selected by the VQL specification query.
func (s *System) CreateCollection(name, specQuery string, opts CollectionOptions) (*Collection, error) {
	return s.coupling.CreateCollection(name, specQuery, opts)
}

// Collection looks up a collection by name.
func (s *System) Collection(name string) (*Collection, error) {
	return s.coupling.Collection(name)
}

// DropCollection removes a collection.
func (s *System) DropCollection(name string) error {
	return s.coupling.DropCollection(name)
}

// Query runs a VQL statement (mixed structure/content queries
// included) with the automatic evaluation strategy. Collection names
// are pre-bound, so queries reference them directly (collPara in the
// paper's examples).
func (s *System) Query(src string) (*ResultSet, error) {
	return s.coupling.Evaluator().Run(src)
}

// QueryWithStrategy runs a VQL statement under an explicit
// evaluation strategy (Section 4.5.3 alternatives).
func (s *System) QueryWithStrategy(src string, strategy Strategy) (*ResultSet, error) {
	return s.coupling.Evaluator().RunWithStrategy(src, strategy)
}

// ExplainQuery returns the execution plan a statement would run
// under: binding domains, pushed-down predicates ordered by method
// cost, the chosen evaluation strategy and any IRS prefilters.
func (s *System) ExplainQuery(src string, strategy Strategy) (string, error) {
	q, err := vql.Parse(src)
	if err != nil {
		return "", err
	}
	plan, err := s.coupling.Evaluator().PlanQuery(q, strategy)
	if err != nil {
		return "", err
	}
	return plan.Describe(), nil
}

// Search runs a pure IRS query against a collection, returning
// object OIDs with retrieval values, best first.
func (s *System) Search(collection, irsQuery string) ([]SearchResult, error) {
	col, err := s.coupling.Collection(collection)
	if err != nil {
		return nil, err
	}
	scores, err := col.GetIRSResult(irsQuery)
	if err != nil {
		return nil, err
	}
	out := make([]SearchResult, 0, len(scores))
	for oid, v := range scores {
		out = append(out, SearchResult{ExtID: oid.String(), Score: v})
	}
	sortResults(out)
	return out, nil
}

// SearchTopK runs a pure IRS query against a collection, returning
// only the k best results (score descending, ties by OID string) —
// exactly the first k entries of Search's ranking, evaluated through
// the streaming top-k engine with MaxScore-style pruning instead of
// scoring and sorting the whole candidate set. k <= 0 behaves like
// Search.
func (s *System) SearchTopK(collection, irsQuery string, k int) ([]SearchResult, error) {
	return s.SearchTopKTraced(collection, irsQuery, k, nil)
}

// SearchTopKTraced is SearchTopK carrying a per-request trace context
// (nil-safe). The serving layer starts a trace per request and passes
// it down here; every layer below records its stage spans and
// annotations into it.
func (s *System) SearchTopKTraced(collection, irsQuery string, k int, tr *obs.Trace) ([]SearchResult, error) {
	col, err := s.coupling.Collection(collection)
	if err != nil {
		return nil, err
	}
	ranked, err := col.GetIRSResultTopKTraced(irsQuery, k, tr)
	if err != nil {
		return nil, err
	}
	out := make([]SearchResult, len(ranked))
	for i, rv := range ranked {
		out[i] = SearchResult{ExtID: rv.OID.String(), Score: rv.Value}
	}
	return out, nil
}

// Text returns an object's textual representation under a getText
// mode.
func (s *System) Text(oid OID, mode int) string { return s.store.Text(oid, mode) }

// Collections returns all collection names, sorted.
func (s *System) Collections() []string { return s.coupling.Collections() }

// RecoveryReports returns what this system's open recovered from
// collection write-ahead logs — empty when every log was clean (the
// common case after an orderly shutdown). Serving layers log these at
// startup so an operator sees that a crash happened and what replay
// restored.
func (s *System) RecoveryReports() []RecoveryReport {
	return s.engine.RecoveryReports()
}

// Epoch returns the coupling-wide change counter: it advances on
// every committed document mutation, collection lifecycle change,
// (re)indexing pass or propagation flush. Serving layers key
// whole-query caches on it — a result cached under one epoch value
// may be replayed while the epoch stands still, which keeps the
// deferred propagation policies (PropagateOnQuery, PropagateManually)
// correct behind such caches.
func (s *System) Epoch() uint64 { return s.coupling.Epoch() }

// ParseOID parses an OID string ("oid42"); the error-returning
// counterpart of MustOID for request-handling code.
func ParseOID(str string) (OID, error) { return oodb.ParseOID(str) }

// MustOID parses an OID string ("oid42"), panicking on malformed
// input; convenient in examples and tests.
func MustOID(str string) OID {
	oid, err := oodb.ParseOID(str)
	if err != nil {
		panic(fmt.Sprintf("docirs: %v", err))
	}
	return oid
}

func sortResults(rs []SearchResult) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			if rs[j].Score > rs[j-1].Score ||
				(rs[j].Score == rs[j-1].Score && rs[j].ExtID < rs[j-1].ExtID) {
				rs[j], rs[j-1] = rs[j-1], rs[j]
			} else {
				break
			}
		}
	}
}
