package main

import (
	"io"

	"repro/internal/eval"
)

// experimentRunners maps experiment ids to their eval runners. The
// ids match DESIGN.md's per-experiment index and EXPERIMENTS.md.
// shards parameterizes the sharded-engine experiments (S1/S3..S6);
// 0 selects GOMAXPROCS (S4..S6 floor it at 4 so the cross-shard
// scheduler has shards to skip).
func experimentRunners(shards int) map[string]runner {
	return map[string]runner{
		"S1": {"Sharded vs single-shard IRS engine (parallel query evaluation)", func(w io.Writer) error {
			_, err := eval.RunS1(w, shards)
			return err
		}},
		"S2": {"Sync vs async ingest pipeline (staged analysis, group commit)", func(w io.Writer) error {
			_, err := eval.RunS2(w)
			return err
		}},
		"S3": {"Streaming top-k vs exhaustive evaluation (MaxScore pruning)", func(w io.Writer) error {
			_, err := eval.RunS3(w, shards)
			return err
		}},
		"S4": {"Cross-shard top-k threshold sharing vs per-shard-only pruning", func(w io.Writer) error {
			// RunS4 errors when its ranking-equality gate trips, so a
			// divergence fails the run (and CI) instead of logging.
			_, err := eval.RunS4(w, shards)
			return err
		}},
		"S5": {"Block-max posting cursors over compressed blocks vs whole-list bounds", func(w io.Writer) error {
			// RunS5 errors when its exactness, block-skip or compression
			// gate trips, so any of them failing fails the run (and CI).
			_, err := eval.RunS5(w, shards)
			return err
		}},
		"S6": {"Zero-copy mmap serving vs heap load of the .irsc v5 layout", func(w io.Writer) error {
			// RunS6 errors when its cold-open, steady-state, residency or
			// ranking-equality gate trips, so any failure fails CI.
			_, err := eval.RunS6(w, shards)
			return err
		}},
		"S7": {"Adaptive serving: cost-aware 2Q query cache + load-adaptive ingest coalescing", func(w io.Writer) error {
			// RunS7 errors when its scored-reduction, throughput or
			// ranking-equality gate trips, so any failure fails CI.
			_, err := eval.RunS7(w)
			return err
		}},
		"S8": {"Durable ingest: WAL fsync-policy overhead + crash recovery by snapshot and replay", func(w io.Writer) error {
			// RunS8 errors when its overhead, ranking-equality,
			// replay-floor or serving-surface gate trips.
			_, err := eval.RunS8(w)
			return err
		}},
		"F1": {"Figure 1: coupling architectures", func(w io.Writer) error {
			_, err := eval.RunF1(w)
			return err
		}},
		"F2": {"Figure 2: overlapping collections / object-document mapping", func(w io.Writer) error {
			_, err := eval.RunF2(w)
			return err
		}},
		"F3": {"Figure 3: persistent IRS-result buffer", func(w io.Writer) error {
			_, err := eval.RunF3(w)
			return err
		}},
		"F4": {"Figure 4: derivation schemes on the paper's example", func(w io.Writer) error {
			_, err := eval.RunF4(w)
			return err
		}},
		"T1": {"Section 4.3: IRS-document granularity", func(w io.Writer) error {
			_, err := eval.RunT1(w)
			return err
		}},
		"T2": {"Section 4.5.3: mixed-query evaluation strategies", func(w io.Writer) error {
			_, err := eval.RunT2(w)
			return err
		}},
		"T3": {"Section 4.5.4: operator placement", func(w io.Writer) error {
			_, err := eval.RunT3(w)
			return err
		}},
		"T4": {"Section 4.6: update propagation policies", func(w io.Writer) error {
			_, err := eval.RunT4(w)
			return err
		}},
		"T5": {"Sections 2/4.3: redundancy avoidance via derivation", func(w io.Writer) error {
			_, err := eval.RunT5(w)
			return err
		}},
		"T6": {"Section 4.5: result-file exchange vs direct API", func(w io.Writer) error {
			_, err := eval.RunT6(w)
			return err
		}},
		"T7": {"Section 3: exchangeable retrieval paradigms", func(w io.Writer) error {
			_, err := eval.RunT7(w)
			return err
		}},
		"T8": {"Section 6 (open issue): negation across world assumptions", func(w io.Writer) error {
			_, err := eval.RunT8(w)
			return err
		}},
		"A1": {"Ablation: query-aware dispersion penalty", func(w io.Writer) error {
			_, err := eval.RunA1(w)
			return err
		}},
		"A2": {"Ablation: scaling with corpus size", func(w io.Writer) error {
			_, err := eval.RunA2(w)
			return err
		}},
		"X1": {"Section 6 (extension): passage retrieval [SAB93]", func(w io.Writer) error {
			_, err := eval.RunX1(w)
			return err
		}},
	}
}
