// Command mmfbench regenerates every figure and table of the
// reproduction (see DESIGN.md's per-experiment index). Without flags
// it runs all experiments; -exp selects one.
//
//	mmfbench            # run everything
//	mmfbench -exp F4    # only the Figure 4 derivation table
//	mmfbench -list      # list experiment ids
//
// It also maintains the repo's perf trajectory:
//
//	mmfbench -bench-out BENCH_6.json -bench-pr 6     # measure + write snapshot
//	mmfbench -bench-old BENCH_5.json -bench-new BENCH_6.json          # diff, warn
//	mmfbench -bench-old BENCH_5.json -bench-new BENCH_6.json -bench-gate  # diff, exit 1 on regression
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/eval"
)

func main() {
	exp := flag.String("exp", "", "experiment id (F1..F4, T1..T8, A1/A2, X1, S1..S8); empty = all")
	list := flag.Bool("list", false, "list experiment ids and exit")
	shards := flag.Int("shards", 0, "shard count for the S1/S3..S6 sharded-engine experiments (0: GOMAXPROCS)")
	benchOut := flag.String("bench-out", "", "measure the perf snapshot and write it to this file (skips experiments)")
	benchPR := flag.Int("bench-pr", 0, "PR number stamped into -bench-out")
	benchOld := flag.String("bench-old", "", "previous BENCH_*.json to diff -bench-new against")
	benchNew := flag.String("bench-new", "", "new BENCH_*.json for the diff")
	benchGate := flag.Bool("bench-gate", false, "exit 1 when the bench diff finds a regression (default: warn only)")
	benchMmap := flag.Bool("mmap", false, "include the mmap serving numbers (cold open A/B, search_topk10_mapped) in -bench-out")
	flag.Parse()

	if *benchOut != "" {
		rep, err := eval.RunBench(os.Stdout, *benchPR)
		if err == nil && *benchMmap {
			err = eval.AddMappedBench(os.Stdout, rep)
		}
		if err == nil {
			err = eval.AddServingBench(os.Stdout, rep)
		}
		if err == nil {
			err = eval.AddDurabilityBench(os.Stdout, rep)
		}
		if err == nil {
			err = eval.WriteBenchReport(*benchOut, rep)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmfbench: bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchOut)
		return
	}
	if *benchNew != "" {
		if err := diffBench(*benchOld, *benchNew, *benchGate); err != nil {
			fmt.Fprintf(os.Stderr, "mmfbench: bench diff: %v\n", err)
			os.Exit(1)
		}
		return
	}

	runners := experimentRunners(*shards)
	if *list {
		ids := make([]string, 0, len(runners))
		for id := range runners {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("%-4s %s\n", id, runners[id].title)
		}
		return
	}
	if *exp != "" {
		id := strings.ToUpper(*exp)
		r, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "mmfbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		if err := r.run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mmfbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		return
	}
	ids := make([]string, 0, len(runners))
	for id := range runners {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := runners[id].run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mmfbench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

type runner struct {
	title string
	run   func(io.Writer) error
}

// diffBench compares two perf snapshots. A missing -bench-old (first
// PR to carry a snapshot) validates the new report and warns instead
// of failing, gated or not — there is nothing to regress against.
func diffBench(oldPath, newPath string, gate bool) error {
	newRep, err := eval.LoadBenchReport(newPath)
	if err != nil {
		return err
	}
	if err := eval.ValidateBenchReport(newRep); err != nil {
		return err
	}
	if oldPath == "" {
		fmt.Printf("no previous bench report; %s validates clean (first point of the trajectory)\n", newPath)
		return nil
	}
	oldRep, err := eval.LoadBenchReport(oldPath)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("previous bench report %s missing; %s validates clean\n", oldPath, newPath)
			return nil
		}
		return err
	}
	regressions := eval.DiffBenchReports(os.Stdout, oldRep, newRep, 0)
	if len(regressions) == 0 {
		return nil
	}
	for _, r := range regressions {
		fmt.Fprintf(os.Stderr, "mmfbench: regression: %s\n", r)
	}
	if gate {
		return fmt.Errorf("%d benchmark(s) regressed", len(regressions))
	}
	fmt.Fprintln(os.Stderr, "mmfbench: warn-only (no -bench-gate); not failing")
	return nil
}
