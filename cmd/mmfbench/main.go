// Command mmfbench regenerates every figure and table of the
// reproduction (see DESIGN.md's per-experiment index). Without flags
// it runs all experiments; -exp selects one.
//
//	mmfbench            # run everything
//	mmfbench -exp F4    # only the Figure 4 derivation table
//	mmfbench -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	exp := flag.String("exp", "", "experiment id (F1..F4, T1..T8, A1/A2, X1, S1/S2/S3/S4); empty = all")
	list := flag.Bool("list", false, "list experiment ids and exit")
	shards := flag.Int("shards", 0, "shard count for the S1/S3/S4 sharded-engine experiments (0: GOMAXPROCS)")
	flag.Parse()

	runners := experimentRunners(*shards)
	if *list {
		ids := make([]string, 0, len(runners))
		for id := range runners {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("%-4s %s\n", id, runners[id].title)
		}
		return
	}
	if *exp != "" {
		id := strings.ToUpper(*exp)
		r, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "mmfbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		if err := r.run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mmfbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		return
	}
	ids := make([]string, 0, len(runners))
	for id := range runners {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := runners[id].run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mmfbench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

type runner struct {
	title string
	run   func(io.Writer) error
}
