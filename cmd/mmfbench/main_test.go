package main

import (
	"io"
	"strings"
	"testing"
)

// The runner registry must cover every experiment in DESIGN.md's
// index and every runner must produce a non-empty table.
func TestExperimentRunnersComplete(t *testing.T) {
	runners := experimentRunners(0)
	want := []string{"F1", "F2", "F3", "F4", "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "A1", "A2", "X1", "S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8"}
	if len(runners) != len(want) {
		t.Errorf("registry has %d runners, want %d", len(runners), len(want))
	}
	for _, id := range want {
		r, ok := runners[id]
		if !ok {
			t.Errorf("experiment %s missing from registry", id)
			continue
		}
		if r.title == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
}

// Spot-run the two fastest experiments through the registry to make
// sure the wiring (not just the eval package) works.
func TestRunnerWiring(t *testing.T) {
	runners := experimentRunners(0)
	for _, id := range []string{"F4", "A1"} {
		var sb strings.Builder
		if err := runners[id].run(&sb); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(sb.String(), "EXP-"+id) {
			t.Errorf("%s output missing header:\n%s", id, sb.String())
		}
	}
}

var _ io.Writer = (*strings.Builder)(nil)
