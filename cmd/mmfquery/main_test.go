package main

import (
	"strings"
	"testing"

	docirs "repro"
)

const testDTD = `
<!ELEMENT MMFDOC   - -  (LOGBOOK, DOCTITLE, ABSTRACT, PARA+)>
<!ELEMENT LOGBOOK  - O  (#PCDATA)>
<!ELEMENT DOCTITLE - O  (#PCDATA)>
<!ELEMENT ABSTRACT - O  (#PCDATA)>
<!ELEMENT PARA     - O  (#PCDATA)>
`

func shellFixture(t *testing.T) *docirs.System {
	t.Helper()
	sys, err := docirs.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	dtd, err := sys.LoadDTD(testDTD)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.LoadDocument(dtd,
		`<MMFDOC><LOGBOOK>l<DOCTITLE>t<ABSTRACT>a<PARA>the www www paragraph<PARA>another one</MMFDOC>`); err != nil {
		t.Fatal(err)
	}
	coll, err := sys.CreateCollection("collPara", "ACCESS p FROM p IN PARA;", docirs.CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coll.IndexObjects(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func exec(t *testing.T, sys *docirs.System, line string) (string, bool) {
	t.Helper()
	var sb strings.Builder
	quit := execLine(sys, line, &sb)
	return sb.String(), quit
}

func TestShellMetaCommands(t *testing.T) {
	sys := shellFixture(t)
	out, _ := exec(t, sys, ".collections")
	if !strings.Contains(out, "collPara") || !strings.Contains(out, "2 IRS docs") {
		t.Errorf(".collections = %q", out)
	}
	out, _ = exec(t, sys, ".classes")
	if !strings.Contains(out, "PARA (2 instances)") {
		t.Errorf(".classes = %q", out)
	}
	out, _ = exec(t, sys, ".stats collPara")
	if !strings.Contains(out, "IRS searches") {
		t.Errorf(".stats = %q", out)
	}
	out, _ = exec(t, sys, ".stats ghost")
	if !strings.Contains(out, "error") {
		t.Errorf(".stats ghost = %q", out)
	}
	if _, quit := exec(t, sys, ".quit"); !quit {
		t.Error(".quit did not quit")
	}
	if _, quit := exec(t, sys, ""); quit {
		t.Error("empty line quit")
	}
}

func TestShellIRSQuery(t *testing.T) {
	sys := shellFixture(t)
	out, _ := exec(t, sys, "?collPara www")
	if !strings.Contains(out, "1.") || !strings.Contains(out, "oid") {
		t.Errorf("IRS query output = %q", out)
	}
	out, _ = exec(t, sys, "?collPara")
	if !strings.Contains(out, "usage") {
		t.Errorf("malformed ? = %q", out)
	}
	out, _ = exec(t, sys, "?ghost www")
	if !strings.Contains(out, "error") {
		t.Errorf("ghost collection = %q", out)
	}
}

func TestShellVQL(t *testing.T) {
	sys := shellFixture(t)
	out, _ := exec(t, sys, `ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'www') > 0.5;`)
	if !strings.Contains(out, "(1 rows)") {
		t.Errorf("VQL output = %q", out)
	}
	out, _ = exec(t, sys, "garbage input")
	if !strings.Contains(out, "error") {
		t.Errorf("garbage = %q", out)
	}
}

func TestShellPlan(t *testing.T) {
	sys := shellFixture(t)
	out, _ := exec(t, sys, `.plan ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, 'www') > 0.5;`)
	if !strings.Contains(out, "strategy=") || !strings.Contains(out, "scan p IN PARA") {
		t.Errorf(".plan output = %q", out)
	}
	out, _ = exec(t, sys, ".plan garbage")
	if !strings.Contains(out, "error") {
		t.Errorf(".plan garbage = %q", out)
	}
}
