// Command mmfquery is an interactive shell over a database directory
// created by mmfload. It accepts:
//
//	VQL statements           ACCESS ... FROM ... WHERE ...;
//	IRS queries              ?collName #and(www nii)
//	meta commands            .collections  .classes  .stats NAME
//	                         .drain NAME  .plan VQL  .quit
//
// VQL statements may reference collection names directly, as in the
// paper's examples (collPara).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	docirs "repro"
)

func main() {
	dbDir := flag.String("db", "", "database directory (required)")
	flag.Parse()
	if *dbDir == "" {
		fmt.Fprintln(os.Stderr, "usage: mmfquery -db DIR")
		os.Exit(2)
	}
	sys, err := docirs.Open(*dbDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmfquery: %v\n", err)
		os.Exit(1)
	}
	defer sys.Close()

	fmt.Println("mmfquery — VQL statements, ?coll IRSQUERY, .collections, .classes, .stats NAME, .drain NAME, .quit")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		if quit := execLine(sys, sc.Text(), os.Stdout); quit {
			return
		}
		fmt.Print("> ")
	}
}

// execLine executes one shell line, reporting whether the shell
// should exit.
func execLine(sys *docirs.System, raw string, out io.Writer) bool {
	line := strings.TrimSpace(raw)
	switch {
	case line == "":
	case line == ".quit" || line == ".exit":
		return true
	case line == ".collections":
		for _, name := range sys.Coupling().Collections() {
			coll, err := sys.Collection(name)
			if err != nil {
				continue
			}
			fmt.Fprintf(out, "%s  (%d IRS docs, spec: %s)\n", name, coll.DocCount(), coll.SpecQuery())
		}
	case line == ".classes":
		for _, name := range sys.DB().Classes() {
			fmt.Fprintf(out, "%s (%d instances)\n", name, len(sys.DB().Extent(name, false)))
		}
	case strings.HasPrefix(line, ".plan "):
		plan, err := sys.ExplainQuery(strings.TrimPrefix(line, ".plan "), docirs.StrategyAuto)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		fmt.Fprint(out, plan)
	case strings.HasPrefix(line, ".stats "):
		name := strings.TrimSpace(strings.TrimPrefix(line, ".stats "))
		coll, err := sys.Collection(name)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		s := coll.Stats().Snapshot()
		fmt.Fprintf(out, "IRS searches %d, buffer hits %d, misses %d, derivations %d, ops applied %d, cancelled %d\n",
			s.IRSSearches, s.BufferHits, s.BufferMisses, s.Derivations, s.OpsApplied, s.OpsCancelled)
		fmt.Fprintf(out, "pipeline: policy %s, pending %d, group commits %d, analyze %.2fms, commit %.2fms, flush errors %d\n",
			coll.Policy(), coll.PendingOps(), s.GroupCommits,
			float64(s.AnalyzeNanos)/1e6, float64(s.CommitNanos)/1e6, s.FlushErrors)
		tk := coll.IRS().TopKStats()
		fmt.Fprintf(out, "topk: %d queries, %d candidates scored, %d pruned, %d shards skipped, %d blocks skipped, %d postings decoded\n",
			tk.Queries, tk.Scored, tk.Pruned, tk.ShardsSkipped, tk.BlocksSkipped, tk.PostingsDecoded)
		fmt.Fprintf(out, "storage: %d bytes compressed, %.2fx vs flat postings\n",
			coll.IRS().SizeBytes(), coll.IRS().CompressionRatio())
	case strings.HasPrefix(line, ".drain "):
		name := strings.TrimSpace(strings.TrimPrefix(line, ".drain "))
		coll, err := sys.Collection(name)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		pending := coll.PendingOps()
		if err := coll.Drain(); err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		fmt.Fprintf(out, "drained %d pending updates (applied watermark %d)\n",
			pending, coll.AppliedWatermark())
	case strings.HasPrefix(line, "?"):
		// ?coll QUERY shows the 10 best hits; only those are evaluated —
		// the shell goes through the streaming top-k engine, the same
		// limit pushdown the HTTP layer's ?limit= performs.
		rest := strings.TrimSpace(line[1:])
		parts := strings.SplitN(rest, " ", 2)
		if len(parts) != 2 {
			fmt.Fprintln(out, "usage: ?collName IRSQUERY")
			break
		}
		hits, err := sys.SearchTopK(parts[0], parts[1], 10)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		for i, h := range hits {
			fmt.Fprintf(out, "%2d. %-10s %.4f\n", i+1, h.ExtID, h.Score)
		}
	default:
		rs, err := sys.Query(line)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		fmt.Fprintln(out, strings.Join(rs.Columns, " | "))
		for i, row := range rs.Rows {
			if i >= 20 {
				fmt.Fprintf(out, "... (%d more rows)\n", len(rs.Rows)-20)
				break
			}
			cells := make([]string, len(row))
			for j, v := range row {
				cells[j] = v.String()
			}
			fmt.Fprintln(out, strings.Join(cells, " | "))
		}
		fmt.Fprintf(out, "(%d rows)\n", len(rs.Rows))
	}
	return false
}
