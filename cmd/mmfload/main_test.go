package main

import (
	"os"
	"path/filepath"
	"testing"

	docirs "repro"
)

const testDTD = `
<!ELEMENT MMFDOC   - -  (LOGBOOK, DOCTITLE, ABSTRACT, PARA+)>
<!ELEMENT LOGBOOK  - O  (#PCDATA)>
<!ELEMENT DOCTITLE - O  (#PCDATA)>
<!ELEMENT ABSTRACT - O  (#PCDATA)>
<!ELEMENT PARA     - O  (#PCDATA)>
`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadAndReindexFlow(t *testing.T) {
	dir := t.TempDir()
	dbDir := filepath.Join(dir, "db")
	dtdPath := write(t, dir, "mmf.dtd", testDTD)
	doc1 := write(t, dir, "d1.sgm",
		`<MMFDOC><LOGBOOK>l<DOCTITLE>t1<ABSTRACT>a<PARA>the www paragraph</MMFDOC>`)
	doc2 := write(t, dir, "d2.sgm",
		`<MMFDOC><LOGBOOK>l<DOCTITLE>t2<ABSTRACT>a<PARA>the nii paragraph</MMFDOC>`)

	// First run: creates the collection under the async policy.
	if err := run(dbDir, dtdPath, "collPara", "ACCESS p FROM p IN PARA;", "async", 0, 2, docirs.OpenOptions{}, []string{doc1}); err != nil {
		t.Fatal(err)
	}
	// Second run: appends a document and reindexes.
	if err := run(dbDir, dtdPath, "collPara", "", "", 0, 0, docirs.OpenOptions{MappedIRS: true}, []string{doc2}); err != nil {
		t.Fatal(err)
	}
	sys, err := docirs.Open(dbDir)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	coll, err := sys.Collection("collPara")
	if err != nil {
		t.Fatal(err)
	}
	if coll.DocCount() != 2 {
		t.Errorf("DocCount = %d, want 2", coll.DocCount())
	}
	if got := coll.Policy(); got != docirs.PropagateAsync {
		t.Errorf("policy = %v, want async (persisted from first run)", got)
	}
	if got := coll.PendingOps(); got != 0 {
		t.Errorf("PendingOps = %d after load runs, want 0 (drained)", got)
	}
	hits, err := sys.Search("collPara", "nii")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Errorf("nii hits = %v", hits)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	dtdPath := write(t, dir, "mmf.dtd", testDTD)
	if err := run(filepath.Join(dir, "db1"), filepath.Join(dir, "missing.dtd"), "", "", "", 0, 0, docirs.OpenOptions{}, []string{"x"}); err == nil {
		t.Error("missing DTD accepted")
	}
	if err := run(filepath.Join(dir, "db2"), dtdPath, "", "", "", 0, 0, docirs.OpenOptions{}, []string{filepath.Join(dir, "missing.sgm")}); err == nil {
		t.Error("missing document accepted")
	}
	bad := write(t, dir, "bad.sgm", "<WRONG>")
	if err := run(filepath.Join(dir, "db3"), dtdPath, "", "", "", 0, 0, docirs.OpenOptions{}, []string{bad}); err == nil {
		t.Error("invalid document accepted")
	}
	good := write(t, dir, "good.sgm",
		`<MMFDOC><LOGBOOK>l<DOCTITLE>t<ABSTRACT>a<PARA>p</MMFDOC>`)
	if err := run(filepath.Join(dir, "db4"), dtdPath, "c", "ACCESS p FROM p IN PARA;", "never", 0, 0, docirs.OpenOptions{}, []string{good}); err == nil {
		t.Error("unknown policy accepted")
	}
}
