// Command mmfload loads a DTD and SGML documents into a persistent
// database directory and (optionally) indexes a collection:
//
//	mmfload -db ./data -dtd mmf.dtd doc1.sgm doc2.sgm
//	mmfload -db ./data -dtd mmf.dtd -collection collPara \
//	        -spec "ACCESS p FROM p IN PARA;" docs/*.sgm
//
// Re-running against the same -db directory appends documents; an
// existing collection is refreshed with Reindex.
package main

import (
	"flag"
	"fmt"
	"os"

	docirs "repro"
)

func main() {
	dbDir := flag.String("db", "", "database directory (required)")
	dtdPath := flag.String("dtd", "", "DTD file (required)")
	collName := flag.String("collection", "", "collection to create/refresh")
	spec := flag.String("spec", "ACCESS p FROM p IN PARA;", "specification query for -collection")
	textMode := flag.Int("textmode", docirs.ModeFullText, "getText mode (0=full,1=abstract,2=own)")
	policy := flag.String("policy", "on-query", "propagation policy for a newly created -collection (on-query, immediate, manual, async)")
	shards := flag.Int("shards", 0, "index shards for a newly created -collection (0: engine default; existing collections keep theirs)")
	mmap := flag.Bool("mmap", false, "open existing .irsc collections memory-mapped while loading (appends overlay in memory and fold on save)")
	noWAL := flag.Bool("no-wal", false, "disable the per-collection IRS write-ahead log for this load")
	walFsync := flag.String("wal-fsync", "", "WAL fsync policy: group (default), always or off")
	flag.Parse()

	if *dbDir == "" || *dtdPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mmfload -db DIR -dtd FILE [-collection NAME [-spec QUERY] [-policy P] [-shards N]] [-mmap] [-no-wal] [-wal-fsync P] doc.sgm...")
		os.Exit(2)
	}
	opts := docirs.OpenOptions{MappedIRS: *mmap, NoWAL: *noWAL, WALFsync: *walFsync}
	if err := run(*dbDir, *dtdPath, *collName, *spec, *policy, *textMode, *shards, opts, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "mmfload: %v\n", err)
		os.Exit(1)
	}
}

func run(dbDir, dtdPath, collName, spec, policy string, textMode, shards int, opts docirs.OpenOptions, files []string) error {
	sys, err := docirs.OpenWith(dbDir, opts)
	if err != nil {
		return err
	}
	defer sys.Close()
	for _, rep := range sys.RecoveryReports() {
		fmt.Printf("wal recovery: collection %s replayed %d of %d records (watermark %d)\n",
			rep.Collection, rep.Replayed, rep.Records, rep.Watermark)
	}
	if shards > 0 {
		sys.Engine().SetDefaultShards(shards)
	}

	dtdSrc, err := os.ReadFile(dtdPath)
	if err != nil {
		return err
	}
	dtd, err := sys.LoadDTD(string(dtdSrc))
	if err != nil {
		return err
	}
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		oid, err := sys.LoadDocument(dtd, string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("loaded %s as %s\n", path, oid)
	}
	if collName == "" {
		return nil
	}
	pol, err := docirs.ParsePolicy(policy)
	if err != nil {
		return err
	}
	coll, err := sys.Collection(collName)
	if err != nil {
		coll, err = sys.CreateCollection(collName, spec, docirs.CollectionOptions{TextMode: textMode, Policy: pol})
		if err != nil {
			return err
		}
		n, err := coll.IndexObjects()
		if err != nil {
			return err
		}
		fmt.Printf("collection %s: indexed %d objects (policy %s)\n", collName, n, coll.Policy())
		return nil
	}
	added, updated, removed, err := coll.Reindex()
	if err != nil {
		return err
	}
	fmt.Printf("collection %s: %d added, %d refreshed, %d removed\n", collName, added, updated, removed)
	// Deferred/async policies may still hold pending propagation from
	// the loads above; drain so the state saved by Close is the fully
	// propagated one and a following mmfquery session starts clean.
	if pending := coll.PendingOps(); pending > 0 {
		if err := coll.Drain(); err != nil {
			return err
		}
		fmt.Printf("collection %s: drained %d pending updates\n", collName, pending)
	}
	return nil
}
