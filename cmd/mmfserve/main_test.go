package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
)

func TestRunRejectsMissingDTDFile(t *testing.T) {
	opts := options{addr: "127.0.0.1:0", dtdPath: filepath.Join(t.TempDir(), "nope.dtd"), dtdName: "mmf"}
	if err := run(opts); err == nil {
		t.Fatal("run accepted a missing DTD file")
	}
}

func TestRunRejectsBadDTD(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.dtd")
	if err := os.WriteFile(path, []byte("<!ELEMENT"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(options{addr: "127.0.0.1:0", dtdPath: path, dtdName: "mmf"}); err == nil {
		t.Fatal("run accepted a malformed DTD")
	}
}

func TestRunRejectsBadLogFlags(t *testing.T) {
	if err := run(options{addr: "127.0.0.1:0", logFormat: "yaml"}); err == nil {
		t.Fatal("run accepted log format yaml")
	}
	if err := run(options{addr: "127.0.0.1:0", logLevel: "loud"}); err == nil {
		t.Fatal("run accepted log level loud")
	}
}

// TestRunServesAndDrains boots the real binary entry point on a free
// port, checks /healthz answers, then delivers SIGTERM and expects a
// clean drain.
func TestRunServesAndDrains(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	errc := make(chan error, 1)
	go func() {
		errc <- run(options{
			addr:    addr,
			dtdName: "default",
			shards:  2,
			cfg:     server.Config{MaxConcurrent: 2},
		})
	}()

	url := fmt.Sprintf("http://%s/healthz", addr)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		select {
		case err := <-errc:
			t.Fatalf("server exited early: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
}
