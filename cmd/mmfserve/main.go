// Command mmfserve runs the concurrent document service: an
// HTTP/JSON API over a docirs.System, with bounded-concurrency
// admission and an epoch-keyed query-result cache.
//
//	mmfserve -addr :8080 -db ./data
//	mmfserve -addr :8080                      # memory-only
//	mmfserve -addr :8080 -db ./data -dtd mmf.dtd -dtd-name mmf
//
// Example session:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/dtds \
//	     -d '{"name":"mmf","dtd":"<!ELEMENT ...>"}'
//	curl -s -X POST localhost:8080/documents \
//	     -d '{"dtd":"mmf","documents":["<MMFDOC>..."]}'
//	curl -s -X POST localhost:8080/collections \
//	     -d '{"name":"collPara","spec":"ACCESS p FROM p IN PARA;"}'
//	curl -s -X POST localhost:8080/query \
//	     -d '{"query":"ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, '\''www'\'') > 0.45;"}'
//	curl -s 'localhost:8080/collections/collPara/search?q=%23and(www%20nii)&limit=5'
//	curl -s localhost:8080/stats
//
// A search limit is pushed down into the IRS as a streaming top-k
// evaluation (MaxScore pruning; /stats reports candidates pruned vs
// scored per collection), and the query cache keys on the limit's
// k-bucket so nearby limits share one evaluation.
//
// The query cache is cost-aware 2Q by default (-cache-policy 2q):
// admission through a probationary queue keeps one-shot scans from
// flushing the hot set, and eviction keeps entries by frequency ×
// measured rebuild cost. -cache-policy lru selects the plain recency
// LRU as an A/B baseline.
//
// Async ingest (collections created with "policy":"async" propagate
// through a background group-commit flusher; tune with
// -async-max-pending / -async-coalesce / -compact-ratio — by default
// the coalescing window adapts to load inside [-async-coalesce-min,
// -async-coalesce-max]):
//
//	curl -s -X POST localhost:8080/documents \
//	     -d '{"dtd":"mmf","mode":"async","documents":["<MMFDOC>..."]}'   # 202 + watermarks
//	curl -s -X POST localhost:8080/collections/collPara/drain            # visibility barrier
//
// Observability: /metrics serves Prometheus text (latency histograms
// per endpoint, per collection and per pipeline stage),
// /debug/slowlog the slowest recent request traces (-slow-query sets
// the admission threshold), logs are structured (-log-format
// text|json, -log-level), and -debug-addr exposes net/http/pprof on a
// separate listener that is never reachable from the service port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	docirs "repro"
	"repro/internal/server"
)

// options carries everything run needs; flags fill one in main.
type options struct {
	addr      string
	dbDir     string
	dtdPath   string
	dtdName   string
	shards    int
	mmap      bool
	noWAL     bool
	walDir    string
	walFsync  string
	debugAddr string // pprof listener; empty disables
	logFormat string // "text" or "json"
	logLevel  string // "debug", "info", "warn" or "error"
	cfg       server.Config
}

func main() {
	var opts options
	flag.StringVar(&opts.addr, "addr", ":8080", "listen address")
	flag.StringVar(&opts.dbDir, "db", "", "database directory (empty: memory-only)")
	flag.StringVar(&opts.dtdPath, "dtd", "", "DTD file to preload (optional)")
	flag.StringVar(&opts.dtdName, "dtd-name", "default", "name the preloaded DTD is registered under")
	flag.IntVar(&opts.shards, "shards", 0, "index shards for new collections (0: GOMAXPROCS; existing collections keep their shard count)")
	flag.BoolVar(&opts.mmap, "mmap", false, "serve persisted .irsc collections from read-only memory mappings instead of heap (O(1) open, heap tracks working set; /stats reports heap_bytes vs mapped_bytes)")
	flag.BoolVar(&opts.noWAL, "no-wal", false, "disable the per-collection IRS write-ahead log (persistent mode only; acknowledged updates since the last snapshot are then lost on crash)")
	flag.StringVar(&opts.walDir, "wal-dir", "", "directory for collection WALs (empty: alongside the .irsc snapshots under <db>/irs)")
	flag.StringVar(&opts.walFsync, "wal-fsync", "", "WAL fsync policy: group (default; one fsync covers a commit group, riding the coalescing window), always or off")
	flag.StringVar(&opts.debugAddr, "debug-addr", "", "separate listen address for net/http/pprof (empty: disabled)")
	flag.StringVar(&opts.logFormat, "log-format", "text", "log output format: text or json")
	flag.StringVar(&opts.logLevel, "log-level", "info", "minimum log level: debug, info, warn or error")
	flag.IntVar(&opts.cfg.MaxConcurrent, "max-concurrent", 0, "concurrent evaluation bound (0: 4×GOMAXPROCS)")
	flag.IntVar(&opts.cfg.CacheSize, "cache-size", 1024, "query cache entries (negative: disable)")
	flag.DurationVar(&opts.cfg.CacheTTL, "cache-ttl", 0, "query cache entry lifetime (0: no expiry; epochs still invalidate on mutation)")
	flag.StringVar(&opts.cfg.CachePolicy, "cache-policy", server.CachePolicy2Q, "query cache replacement policy: 2q (cost-aware, probationary admission) or lru (recency baseline)")
	flag.DurationVar(&opts.cfg.QueueTimeout, "queue-timeout", 5*time.Second, "admission wait bound")
	flag.IntVar(&opts.cfg.AsyncMaxPending, "async-max-pending", 0, "pending-update bound per async collection before ingest sheds 503 (0: 4096; negative: unbounded)")
	flag.DurationVar(&opts.cfg.AsyncCoalesce, "async-coalesce", 0, "group-commit window of the async ingest flusher (0: adaptive inside [-async-coalesce-min, -async-coalesce-max]; positive: fixed; negative: flush immediately)")
	flag.DurationVar(&opts.cfg.AsyncCoalesceMin, "async-coalesce-min", 0, "adaptive coalescing window floor (0: 250µs)")
	flag.DurationVar(&opts.cfg.AsyncCoalesceMax, "async-coalesce-max", 0, "adaptive coalescing window ceiling (0: 8ms)")
	flag.Float64Var(&opts.cfg.CompactRatio, "compact-ratio", 0.5, "tombstone ratio that triggers background index compaction (0: disable)")
	flag.DurationVar(&opts.cfg.SlowQueryThreshold, "slow-query", 0, "duration admitting a request trace to /debug/slowlog (0: 250ms; negative: disable)")
	flag.IntVar(&opts.cfg.SlowLogSize, "slowlog-size", 0, "slow-log ring capacity (0: 128)")
	flag.Parse()

	if err := run(opts); err != nil {
		fmt.Fprintf(os.Stderr, "mmfserve: %v\n", err)
		os.Exit(1)
	}
}

// newLogger builds the structured logger the process logs through.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	ho := &slog.HandlerOptions{Level: lv}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, ho)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, ho)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
}

func run(opts options) error {
	logger, err := newLogger(opts.logFormat, opts.logLevel)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)

	switch opts.cfg.CachePolicy {
	case "", server.CachePolicy2Q, server.CachePolicyLRU:
	default:
		return fmt.Errorf("unknown -cache-policy %q (want %s or %s)",
			opts.cfg.CachePolicy, server.CachePolicy2Q, server.CachePolicyLRU)
	}

	sys, err := docirs.OpenWith(opts.dbDir, docirs.OpenOptions{
		MappedIRS: opts.mmap,
		NoWAL:     opts.noWAL,
		WALDir:    opts.walDir,
		WALFsync:  opts.walFsync,
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	// A non-empty recovery report means the previous process did not
	// shut down cleanly; say what replay restored on top of the
	// snapshots before serving anything.
	for _, rep := range sys.RecoveryReports() {
		logger.Warn("wal recovery",
			"collection", rep.Collection, "records", rep.Records,
			"replayed", rep.Replayed, "watermark", rep.Watermark,
			"torn_bytes", rep.TornBytes, "uncommitted", rep.Uncommitted)
	}

	shards := opts.shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	sys.Engine().SetDefaultShards(shards)

	srv := server.New(sys, opts.cfg)
	if opts.dtdPath != "" {
		src, err := os.ReadFile(opts.dtdPath)
		if err != nil {
			return err
		}
		if err := srv.PreloadDTD(opts.dtdName, string(src)); err != nil {
			return err
		}
		logger.Info("preloaded DTD", "name", opts.dtdName, "path", opts.dtdPath)
	}

	// pprof lives on its own listener: profiling endpoints leak heap
	// contents and must never ride the service port.
	var debugSrv *http.Server
	if opts.debugAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Addr: opts.debugAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("pprof listening", "addr", opts.debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
		defer debugSrv.Close()
	}

	httpSrv := &http.Server{
		Addr:              opts.addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		logger.Info("mmfserve listening",
			"addr", opts.addr, "db", opts.dbDir, "mmap", opts.mmap,
			"shards", shards, "collections", sys.Collections())
		errc <- httpSrv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		logger.Info("shutdown signal received", "signal", sig.String())
		drainStart := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		shutdownErr := httpSrv.Shutdown(ctx)
		if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
			return shutdownErr
		}
		// Drain every collection's propagation queue before Close so
		// async updates reach the index, and report the flush health
		// each collection retires with — a non-empty LastFlushError
		// here is the difference between "clean exit" and "silently
		// dropped updates".
		for _, name := range sys.Collections() {
			col, err := sys.Collection(name)
			if err != nil {
				continue
			}
			pending := col.PendingOps()
			if err := col.Drain(); err != nil {
				logger.Error("collection drain failed", "collection", name, "err", err)
			}
			cs := col.Stats().Snapshot()
			attrs := []any{
				"collection", name,
				"pending_was", pending,
				"flushes", cs.Flushes,
				"flush_errors", cs.FlushErrors,
			}
			if last := col.LastFlushError(); last != "" {
				attrs = append(attrs, "last_flush_error", last)
				logger.Warn("collection drained with flush errors", attrs...)
			} else {
				logger.Info("collection drained", attrs...)
			}
		}
		logger.Info("drained",
			"duration", time.Since(drainStart).String(),
			"timed_out", errors.Is(shutdownErr, context.DeadlineExceeded))
		return nil
	}
}
