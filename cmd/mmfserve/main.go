// Command mmfserve runs the concurrent document service: an
// HTTP/JSON API over a docirs.System, with bounded-concurrency
// admission and an epoch-keyed query-result cache.
//
//	mmfserve -addr :8080 -db ./data
//	mmfserve -addr :8080                      # memory-only
//	mmfserve -addr :8080 -db ./data -dtd mmf.dtd -dtd-name mmf
//
// Example session:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/dtds \
//	     -d '{"name":"mmf","dtd":"<!ELEMENT ...>"}'
//	curl -s -X POST localhost:8080/documents \
//	     -d '{"dtd":"mmf","documents":["<MMFDOC>..."]}'
//	curl -s -X POST localhost:8080/collections \
//	     -d '{"name":"collPara","spec":"ACCESS p FROM p IN PARA;"}'
//	curl -s -X POST localhost:8080/query \
//	     -d '{"query":"ACCESS p FROM p IN PARA WHERE p -> getIRSValue(collPara, '\''www'\'') > 0.45;"}'
//	curl -s 'localhost:8080/collections/collPara/search?q=%23and(www%20nii)&limit=5'
//	curl -s localhost:8080/stats
//
// A search limit is pushed down into the IRS as a streaming top-k
// evaluation (MaxScore pruning; /stats reports candidates pruned vs
// scored per collection), and the query cache keys on the limit's
// k-bucket so nearby limits share one evaluation.
//
// Async ingest (collections created with "policy":"async" propagate
// through a background group-commit flusher; tune with
// -async-max-pending / -async-coalesce / -compact-ratio):
//
//	curl -s -X POST localhost:8080/documents \
//	     -d '{"dtd":"mmf","mode":"async","documents":["<MMFDOC>..."]}'   # 202 + watermarks
//	curl -s -X POST localhost:8080/collections/collPara/drain            # visibility barrier
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	docirs "repro"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dbDir := flag.String("db", "", "database directory (empty: memory-only)")
	dtdPath := flag.String("dtd", "", "DTD file to preload (optional)")
	dtdName := flag.String("dtd-name", "default", "name the preloaded DTD is registered under")
	maxConcurrent := flag.Int("max-concurrent", 0, "concurrent evaluation bound (0: 4×GOMAXPROCS)")
	cacheSize := flag.Int("cache-size", 1024, "query cache entries (negative: disable)")
	cacheTTL := flag.Duration("cache-ttl", 0, "query cache entry lifetime (0: no expiry; epochs still invalidate on mutation)")
	queueTimeout := flag.Duration("queue-timeout", 5*time.Second, "admission wait bound")
	shards := flag.Int("shards", 0, "index shards for new collections (0: GOMAXPROCS; existing collections keep their shard count)")
	asyncMaxPending := flag.Int("async-max-pending", 0, "pending-update bound per async collection before ingest sheds 503 (0: 4096; negative: unbounded)")
	asyncCoalesce := flag.Duration("async-coalesce", 0, "group-commit window of the async ingest flusher (0: 2ms; negative: flush immediately)")
	compactRatio := flag.Float64("compact-ratio", 0.5, "tombstone ratio that triggers background index compaction (0: disable)")
	flag.Parse()

	if err := run(*addr, *dbDir, *dtdPath, *dtdName, *shards, server.Config{
		MaxConcurrent:   *maxConcurrent,
		CacheSize:       *cacheSize,
		CacheTTL:        *cacheTTL,
		QueueTimeout:    *queueTimeout,
		AsyncMaxPending: *asyncMaxPending,
		AsyncCoalesce:   *asyncCoalesce,
		CompactRatio:    *compactRatio,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "mmfserve: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, dbDir, dtdPath, dtdName string, shards int, cfg server.Config) error {
	sys, err := docirs.Open(dbDir)
	if err != nil {
		return err
	}
	defer sys.Close()

	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	sys.Engine().SetDefaultShards(shards)
	log.Printf("index shards for new collections: %d", shards)

	srv := server.New(sys, cfg)
	if dtdPath != "" {
		src, err := os.ReadFile(dtdPath)
		if err != nil {
			return err
		}
		if err := srv.PreloadDTD(dtdName, string(src)); err != nil {
			return err
		}
		log.Printf("preloaded DTD %q from %s", dtdName, dtdPath)
	}

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("mmfserve listening on %s (db=%q, collections=%v)",
			addr, dbDir, sys.Collections())
		errc <- httpSrv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("received %s, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
