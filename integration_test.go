package docirs

// Integration tests across the full stack: SGML -> object store ->
// collections -> mixed queries -> editorial updates -> restart, with
// concurrent readers, exercised through the public API only.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/derive"
	"repro/internal/workload"
)

// lifecycleDTD includes a FIGURE branch so the integration test also
// exercises EMPTY elements and TextFunc collections.
const lifecycleDTD = `
<!ELEMENT MMFDOC   - -  (LOGBOOK, DOCTITLE, ABSTRACT, (PARA | FIGBLOCK)+)>
<!ELEMENT LOGBOOK  - O  (#PCDATA)>
<!ELEMENT DOCTITLE - O  (#PCDATA)>
<!ELEMENT ABSTRACT - O  (#PCDATA)>
<!ELEMENT PARA     - O  (#PCDATA)>
<!ELEMENT FIGBLOCK - -  (FIGURE, CAPTION)>
<!ELEMENT FIGURE   - O  EMPTY>
<!ELEMENT CAPTION  - O  (#PCDATA)>
<!ATTLIST MMFDOC YEAR NUMBER #IMPLIED>
<!ATTLIST FIGURE SRC CDATA #REQUIRED>
`

func TestFullLifecycle(t *testing.T) {
	dir := t.TempDir()
	sys, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	dtd, err := sys.LoadDTD(lifecycleDTD)
	if err != nil {
		t.Fatal(err)
	}
	doc1, err := sys.LoadDocument(dtd, `<MMFDOC YEAR="1994"><LOGBOOK>l<DOCTITLE>issue one<ABSTRACT>a
<PARA>the www www www keeps growing rapidly
<FIGBLOCK><FIGURE SRC="growth.gif"><CAPTION>growth of www hosts over time</CAPTION></FIGBLOCK>
<PARA>editorial remarks about the journal itself
</MMFDOC>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.LoadDocument(dtd, `<MMFDOC YEAR="1995"><LOGBOOK>l<DOCTITLE>issue two<ABSTRACT>a
<PARA>the nii nii nii program funds infrastructure
<PARA>completely unrelated content fills this paragraph
</MMFDOC>`); err != nil {
		t.Fatal(err)
	}

	// Two overlapping collections: paragraphs (query-aware derive)
	// and figures by caption (TextFunc).
	collPara, err := sys.CreateCollection("collPara", "ACCESS p FROM p IN PARA;",
		CollectionOptions{Deriver: derive.QueryAware{}, Policy: PropagateOnQuery})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := collPara.IndexObjects(); err != nil {
		t.Fatal(err)
	}
	store := sys.Store()
	captionText := func(oid OID, mode int) string {
		for _, sib := range store.Children(store.Parent(oid)) {
			if store.TypeOf(sib) == "CAPTION" {
				return store.Text(sib, ModeFullText)
			}
		}
		return ""
	}
	collFig, err := sys.CreateCollection("collFig", "ACCESS f FROM f IN FIGURE;",
		CollectionOptions{TextFunc: captionText})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := collFig.IndexObjects(); err != nil || n != 1 {
		t.Fatalf("figure indexing: n=%d err=%v", n, err)
	}

	// Mixed query over structure + content.
	rs, err := sys.Query(`ACCESS d FROM d IN MMFDOC, p IN PARA
WHERE p -> getContaining('MMFDOC') == d AND p -> getIRSValue(collPara, 'www') > 0.5;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Ref != doc1 {
		t.Fatalf("mixed query rows = %v", rs.Rows)
	}
	// Caption-based image retrieval.
	figs, err := sys.Search("collFig", "growth hosts")
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 {
		t.Fatalf("figure search = %v", figs)
	}
	// Derived value for the whole document (not represented in
	// collPara).
	v, err := collPara.FindIRSValue("www", doc1)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0.4 {
		t.Errorf("derived document value = %v", v)
	}

	// Editorial update: rewrite a leaf, deferred propagation.
	paras := sys.DB().Extent("PARA", false)
	var target OID
	for _, p := range paras {
		if strings.Contains(sys.Text(p, ModeFullText), "editorial remarks") {
			target = p
		}
	}
	leaf := store.Children(target)[0]
	if err := sys.SetText(leaf, "breaking news about cryptography export rules"); err != nil {
		t.Fatal(err)
	}
	hits, err := sys.Search("collPara", "cryptography")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("update not propagated on query: %v", hits)
	}

	// Restart and verify everything survived.
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	sys2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	coll2, err := sys2.Collection("collPara")
	if err != nil {
		t.Fatal(err)
	}
	if coll2.DocCount() != collPara.DocCount() {
		t.Errorf("para collection size after restart = %d, want %d",
			coll2.DocCount(), collPara.DocCount())
	}
	hits, err = sys2.Search("collPara", "cryptography")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Errorf("updated text lost across restart: %v", hits)
	}
	// TextFunc is not persistable; the collection exists but must be
	// re-armed before re-indexing (documented behaviour).
	fig2, err := sys2.Collection("collFig")
	if err != nil {
		t.Fatal(err)
	}
	fig2.SetTextFunc(captionText)
	if _, _, _, err := fig2.Reindex(); err != nil {
		t.Fatal(err)
	}
	figs, err = sys2.Search("collFig", "growth")
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 {
		t.Errorf("figure retrieval lost across restart: %v", figs)
	}
}

func TestConcurrentQueriesAndUpdates(t *testing.T) {
	sys, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	dtd, err := sys.LoadDTD(workload.MMFDTD)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig()
	cfg.Docs = 10
	corpus := workload.Generate(cfg)
	for i := range corpus.Docs {
		if _, err := sys.LoadDocument(dtd, corpus.Docs[i].SGML); err != nil {
			t.Fatal(err)
		}
	}
	coll, err := sys.CreateCollection("collPara", "ACCESS p FROM p IN PARA;",
		CollectionOptions{Policy: PropagateOnQuery})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coll.IndexObjects(); err != nil {
		t.Fatal(err)
	}
	store := sys.Store()
	var leaves []OID
	for _, p := range sys.DB().Extent("PARA", false) {
		leaves = append(leaves, store.Children(p)...)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) { // readers: IRS + VQL queries
			defer wg.Done()
			queries := []string{"www", "nii", "#and(www nii)", "sgml"}
			for i := 0; i < 30; i++ {
				if _, err := sys.Search("collPara", queries[i%len(queries)]); err != nil {
					errCh <- err
					return
				}
				if _, err := sys.Query(`ACCESS d FROM d IN MMFDOC WHERE d -> getAttributeValue('YEAR') = '1994';`); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
		go func(g int) { // writers: editorial edits
			defer wg.Done()
			for i := 0; i < 20; i++ {
				leaf := leaves[(g*20+i)%len(leaves)]
				if err := sys.SetText(leaf, fmt.Sprintf("edit g%d i%d about www", g, i)); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// System still coherent: a final flush + query works.
	if err := coll.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Search("collPara", "www"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeErrorPaths(t *testing.T) {
	sys, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.LoadDTD("not a dtd"); err == nil {
		t.Error("bad DTD accepted")
	}
	dtd, _ := sys.LoadDTD(lifecycleDTD)
	if _, err := sys.LoadDocument(dtd, "<WRONG>"); err == nil {
		t.Error("invalid document accepted")
	}
	if _, err := sys.Collection("ghost"); err == nil {
		t.Error("ghost collection resolved")
	}
	if _, err := sys.Search("ghost", "x"); err == nil {
		t.Error("search on ghost collection succeeded")
	}
	if _, err := sys.Query("garbage"); err == nil {
		t.Error("garbage VQL accepted")
	}
	if err := sys.DropCollection("ghost"); err == nil {
		t.Error("dropping ghost collection succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustOID on garbage did not panic")
		}
	}()
	MustOID("garbage")
}
